#include "core/pipeline.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace leaps::core {

TrainingData LeapsPipeline::prepare(
    const trace::PartitionedLog& benign_log,
    const trace::PartitionedLog& mixed_log) const {
  LEAPS_SPAN("pipeline.prepare");
  TrainingData out;

  // --- Data Preprocessing Module ----------------------------------------
  {
    LEAPS_SPAN("pipeline.preprocess");
    out.preprocessor = Preprocessor(options_.preprocess);
    out.preprocessor.fit({&benign_log, &mixed_log});
    out.benign_windows = out.preprocessor.make_windows(benign_log);
    out.mixed_windows = out.preprocessor.make_windows(mixed_log);
  }

  // --- Control Flow Graph Inference Module ------------------------------
  const cfg::CfgInference inference(options_.inference);
  {
    LEAPS_SPAN("pipeline.cfg_infer");
    out.benign_cfg = inference.infer(benign_log);
    out.mixed_cfg = inference.infer(mixed_log);
  }

  // --- CFG Alignment (Section VI-A extension, optional) -----------------
  const cfg::CfgAligner aligner(options_.alignment);
  const cfg::InferredCfg* assessed_mixed = &out.mixed_cfg;
  cfg::InferredCfg translated;
  if (options_.align_cfgs) {
    LEAPS_SPAN("pipeline.align");
    const cfg::NodeFingerprints benign_fp = cfg::node_fingerprints(benign_log);
    const cfg::NodeFingerprints mixed_fp = cfg::node_fingerprints(mixed_log);
    out.alignment = aligner.align(out.benign_cfg.graph, out.mixed_cfg.graph,
                                  &benign_fp, &mixed_fp);
    translated = aligner.translate_cfg(out.alignment, out.mixed_cfg);
    assessed_mixed = &translated;
  }

  // --- Weight Assessment -------------------------------------------------
  const cfg::WeightAssessor assessor(out.benign_cfg.graph);
  {
    LEAPS_SPAN("pipeline.weight_assess");
    out.event_benignity = assessor.assess(*assessed_mixed);
    // Events no inferred path maps to (one-frame walks produce no edges)
    // are scored by their frame addresses against the same density array;
    // only events with *no* application frames at all fall back to the
    // default.
    for (const trace::PartitionedEvent& e : mixed_log.events) {
      if (out.event_benignity.count(e.seq) > 0) continue;
      if (e.app_stack.empty()) {
        out.event_benignity[e.seq] = options_.default_benignity;
        continue;
      }
      double sum = 0.0;
      for (std::uint64_t addr : e.app_stack) {
        if (options_.align_cfgs) {
          const auto t = aligner.translate(out.alignment, addr);
          // Untranslatable = inserted or unknown code: benignity 0.
          if (!t.has_value()) continue;
          addr = *t;
        }
        sum += assessor.node_benignity(addr);
      }
      out.event_benignity[e.seq] =
          sum / static_cast<double>(e.app_stack.size());
    }
  }

  // --- assemble datasets ---------------------------------------------------
  LEAPS_SPAN("pipeline.assemble");
  for (const ml::FeatureVector& x : out.benign_windows.X) {
    out.benign.add(x, /*label=*/1, /*weight=*/1.0);
  }
  for (std::size_t w = 0; w < out.mixed_windows.X.size(); ++w) {
    double malice_sum = 0.0;
    const auto& indices = out.mixed_windows.event_indices[w];
    for (const std::size_t idx : indices) {
      const std::uint64_t seq = mixed_log.events[idx].seq;
      const auto it = out.event_benignity.find(seq);
      const double benignity = it == out.event_benignity.end()
                                   ? options_.default_benignity
                                   : it->second;
      malice_sum += 1.0 - std::clamp(benignity, 0.0, 1.0);
    }
    const double weight =
        indices.empty() ? 0.0
                        : malice_sum / static_cast<double>(indices.size());
    out.mixed.add(out.mixed_windows.X[w], /*label=*/-1, weight);
  }
  return out;
}

Detector::Detector(Preprocessor preprocessor, ml::MinMaxScaler scaler,
                   ml::SvmModel model)
    : preprocessor_(std::move(preprocessor)),
      scaler_(std::move(scaler)),
      model_(std::move(model)) {
  LEAPS_CHECK_MSG(preprocessor_.fitted(), "Detector needs a fitted pipeline");
  LEAPS_CHECK_MSG(scaler_.fitted(), "Detector needs a fitted scaler");
}

double Detector::ScanResult::malicious_fraction() const {
  const std::size_t total = benign_windows + malicious_windows;
  return total == 0
             ? 0.0
             : static_cast<double>(malicious_windows) /
                   static_cast<double>(total);
}

Detector::ScanResult Detector::scan(const trace::PartitionedLog& log) const {
  ScanResult result;
  const WindowedData windows = preprocessor_.make_windows(log);
  result.window_labels.reserve(windows.X.size());
  for (const ml::FeatureVector& x : windows.X) {
    const int label = predict(x);
    result.window_labels.push_back(label);
    (label == 1 ? result.benign_windows : result.malicious_windows) += 1;
  }
  return result;
}

int Detector::predict(const ml::FeatureVector& raw_features) const {
  const double f = decision_value(raw_features);
  return f >= decision_threshold_ ? 1 : -1;
}

double Detector::decision_value(const ml::FeatureVector& raw_features) const {
  return model_.decision_value(scaler_.transform(raw_features));
}

double Detector::calibrate(const trace::PartitionedLog& clean_log,
                           double max_false_alarm_rate) {
  LEAPS_CHECK_MSG(max_false_alarm_rate >= 0.0 && max_false_alarm_rate <= 1.0,
                  "false-alarm rate must be in [0,1]");
  const WindowedData windows = preprocessor_.make_windows(clean_log);
  LEAPS_CHECK_MSG(!windows.X.empty(), "calibrate needs at least one window");
  std::vector<double> scores;
  scores.reserve(windows.X.size());
  for (const ml::FeatureVector& x : windows.X) {
    scores.push_back(model_.decision_value(scaler_.transform(x)));
  }
  std::sort(scores.begin(), scores.end());
  // Allow at most floor(rate * n) clean windows below the threshold.
  const auto allowed = static_cast<std::size_t>(
      max_false_alarm_rate * static_cast<double>(scores.size()));
  if (allowed == 0) {
    // Strictly below the lowest clean score.
    decision_threshold_ = scores.front() - 1e-9;
  } else {
    // Threshold between the allowed-th and the next clean score.
    decision_threshold_ = allowed >= scores.size()
                              ? scores.back() + 1e-9
                              : (scores[allowed - 1] + scores[allowed]) / 2.0;
  }
  std::size_t flagged = 0;
  for (const double s : scores) flagged += s < decision_threshold_ ? 1 : 0;
  return static_cast<double>(flagged) / static_cast<double>(scores.size());
}

Detector::Stream::Stream(const Detector& detector) : detector_(&detector) {
  pending_.reserve(3 * detector.preprocessor().window());
}

std::optional<int> Detector::Stream::push(
    const trace::PartitionedEvent& event) {
  return push_tuple(detector_->preprocessor().tuple(event));
}

std::optional<int> Detector::Stream::push(const trace::CompactEvent& event,
                                          const trace::TokenTable& table) {
  return push_tuple(
      detector_->codec().tuple(detector_->preprocessor(), table, event));
}

std::optional<int> Detector::Stream::push_tuple(const EventTuple& t) {
  pending_.push_back(static_cast<double>(t.event_type));
  pending_.push_back(t.lib_coord);
  pending_.push_back(t.func_coord);
  ++events_seen_;
  if (pending_.size() < 3 * detector_->preprocessor().window()) {
    return std::nullopt;
  }
  const double f = detector_->decision_value(pending_);
  const int label = f >= detector_->decision_threshold() ? 1 : -1;
  last_decision_value_ = f;
  pending_.clear();
  tally_.window_labels.push_back(label);
  (label == 1 ? tally_.benign_windows : tally_.malicious_windows) += 1;
  return label;
}

}  // namespace leaps::core
