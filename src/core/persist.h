// Detector persistence: save a trained Detector (preprocessor clustering
// state + feature scaler + SVM model) to a versioned, line-oriented text
// format and load it back — train once on a controlled host, deploy the
// classifier against production logs elsewhere (the paper's deployment
// story for the Testing Phase).
//
// Format sketch (all tokens whitespace-separated, doubles in %.17g):
//   LEAPS-DETECTOR v2
//   OPTIONS window=10 lib_cut=0.3 func_cut=0.35 lib_gap=10 func_gap=10
//   CLUSTERER LIB <unique_sets> <clusters>
//   SET <cluster_id> <position> <n> <member>...
//   ...
//   CLUSTERER FUNC ...
//   SCALER <dims>
//   MIN <v>... / RANGE <v>...
//   SVM <kernel> <sigma2> <degree> <coef0> <bias> <sv_count> <dims>
//   SV <coef> <x>...
//   THRESHOLD <t>
//   CONTINUAL            (v2, optional — continual-learning warm-start state)
//   CFG <edge_count>
//   E <from> <to>...
//   TRAINSET <n> <dims>
//   ROW <y> <c> <alpha> <x>...
//   END
//
// Version compatibility: v1 files (pre-online-learning) still load — they
// simply carry no CONTINUAL block, so Detector::continual() is null and
// retraining falls back to a cold start. save_detector always writes v2
// (the CONTINUAL block only when the detector has the state).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"

namespace leaps::core {

class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what)
      : std::runtime_error("detector persistence: " + what) {}
};

/// Serializes a trained detector. Throws PersistError on unserializable
/// state (e.g. set members containing whitespace).
void save_detector(const Detector& detector, std::ostream& os);

/// Deserializes; throws PersistError on malformed or version-mismatched
/// input.
Detector load_detector(std::istream& is);

/// Convenience file-path wrappers (throw PersistError on I/O failure).
void save_detector_file(const Detector& detector, const std::string& path);
Detector load_detector_file(const std::string& path);

}  // namespace leaps::core
