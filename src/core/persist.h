// Detector persistence: save a trained Detector (preprocessor clustering
// state + feature scaler + SVM model) to a versioned format and load it
// back — train once on a controlled host, deploy the classifier against
// production logs elsewhere (the paper's deployment story for the Testing
// Phase).
//
// v2 body sketch (all tokens whitespace-separated, doubles in %.17g):
//   LEAPS-DETECTOR v2
//   OPTIONS window=10 lib_cut=0.3 func_cut=0.35 lib_gap=10 func_gap=10
//   CLUSTERER LIB <unique_sets> <clusters>
//   SET <cluster_id> <position> <n> <member>...
//   ...
//   CLUSTERER FUNC ...
//   SCALER <dims>
//   MIN <v>... / RANGE <v>...
//   SVM <kernel> <sigma2> <degree> <coef0> <bias> <sv_count> <dims>
//   SV <coef> <x>...
//   THRESHOLD <t>
//   CONTINUAL            (v2, optional — continual-learning warm-start state)
//   CFG <edge_count>
//   E <from> <to>...
//   TRAINSET <n> <dims>
//   ROW <y> <c> <alpha> <x>...
//   END
//
// v3 wraps the same section texts in checksummed blocks so a torn or
// bit-flipped file is *detected* instead of mis-parsed:
//   LEAPS-DETECTOR v3
//   BLOCK <name> <payload_bytes> <crc32c-hex>
//   <payload bytes, newline-terminated>
//   ... (OPTIONS, LIB, FUNC, SCALER, SVM, optional CONTINUAL)
//   END
// The loader verifies every block CRC before parsing a single token and
// reports failures as PersistError with the exact byte offset of the
// damage ("truncated block", "checksum mismatch", "missing END").
//
// Version compatibility: v1 (pre-online-learning) and v2 files still
// load — v1 carries no CONTINUAL block, so Detector::continual() is null
// and retraining falls back to a cold start. save_detector defaults to v3;
// pass PersistVersion::kV2 to emit a file older builds can read.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"

namespace leaps::core {

class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what)
      : std::runtime_error("detector persistence: " + what) {}
};

enum class PersistVersion {
  kV2,  // plain token stream, readable by pre-durability builds
  kV3,  // CRC32C block framing (default)
};

/// Serializes a trained detector. Throws PersistError on unserializable
/// state (e.g. set members containing whitespace).
void save_detector(const Detector& detector, std::ostream& os,
                   PersistVersion version = PersistVersion::kV3);

/// Deserializes any supported version (v1/v2/v3); throws PersistError on
/// malformed or version-mismatched input. v3 errors carry byte offsets.
Detector load_detector(std::istream& is);

/// File-path wrappers. Saving goes through util::atomic_write_file
/// (temp + fsync + rename): a crash mid-save can never leave a
/// half-written model at `path`. Both throw PersistError on I/O failure.
void save_detector_file(const Detector& detector, const std::string& path,
                        PersistVersion version = PersistVersion::kV3);
Detector load_detector_file(const std::string& path);

}  // namespace leaps::core
