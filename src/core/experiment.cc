#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>
#include <thread>
#include <tuple>

#include "trace/parser.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/strings.h"

namespace leaps::core {

namespace {

/// Shuffles [0, n) and returns the first ceil(fraction * n) indices
/// (at least 1 when n > 0).
std::vector<std::size_t> sample_indices(std::size_t n, double fraction,
                                        util::Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5));
  idx.resize(std::min(take, n));
  return idx;
}

struct MetricAccumulator {
  util::RunningStats acc, ppv, tpr, tnr, npv, auc;

  void add(const ml::Measurements& m) {
    acc.add(m.acc);
    ppv.add(m.ppv);
    tpr.add(m.tpr);
    tnr.add(m.tnr);
    npv.add(m.npv);
  }
  ml::Measurements mean() const {
    return {acc.mean(), ppv.mean(), tpr.mean(), tnr.mean(), npv.mean()};
  }
  ml::Measurements stddev() const {
    return {acc.stddev(), ppv.stddev(), tpr.stddev(), tnr.stddev(),
            npv.stddev()};
  }
};

/// Collects the PartitionedEvent pointers of the given windows.
std::vector<const trace::PartitionedEvent*> window_events(
    const trace::PartitionedLog& log, const WindowedData& windows,
    std::size_t window_index) {
  std::vector<const trace::PartitionedEvent*> out;
  for (const std::size_t idx : windows.event_indices[window_index]) {
    out.push_back(&log.events[idx]);
  }
  return out;
}

}  // namespace

ExperimentResult ExperimentRunner::run_scenario(
    const sim::ScenarioSpec& spec) const {
  return run_on_logs(sim::generate_scenario(spec, options_.sim));
}

ExperimentResult ExperimentRunner::run_on_logs(
    const sim::ScenarioLogs& logs) const {
  ExperimentResult result;
  result.spec = logs.spec;

  // --- parse + partition (Raw Log Parser, Stack Partition Module) -------
  const trace::RawLogParser parser;
  const trace::ParsedTrace benign_trace = parser.parse_raw(logs.benign);
  const trace::ParsedTrace mixed_trace = parser.parse_raw(logs.mixed);
  const trace::ParsedTrace malicious_trace = parser.parse_raw(logs.malicious);

  const trace::PartitionedLog benign_part =
      trace::StackPartitioner(benign_trace.log.process_name)
          .partition(benign_trace.log);
  const trace::PartitionedLog mixed_part =
      trace::StackPartitioner(mixed_trace.log.process_name)
          .partition(mixed_trace.log);
  const trace::PartitionedLog malicious_part =
      trace::StackPartitioner(malicious_trace.log.process_name)
          .partition(malicious_trace.log);

  // --- pipeline: features + CFG-guided weights (once per scenario) ------
  const LeapsPipeline pipeline(options_.pipeline);
  const TrainingData td = pipeline.prepare(benign_part, mixed_part);
  const WindowedData malicious_windows =
      td.preprocessor.make_windows(malicious_part);

  // Section VI-B extension: tuple alphabet for the sequence models.
  TupleVocabulary vocabulary;
  if (options_.include_hmm) {
    vocabulary.fit({&benign_part, &mixed_part}, td.preprocessor);
  }

  const std::uint64_t scenario_seed =
      options_.seed ^ util::hash_string(logs.spec.name);

  // ---- per-run data selection (Section V-A-2) ---------------------------
  struct Selection {
    std::vector<std::size_t> benign_train, benign_test, mixed_train,
        malicious_test;
    ml::Dataset train_weighted, train_plain;  // scaled
    ml::MinMaxScaler scaler;
  };
  const auto select = [&](std::size_t run) {
    util::Rng rng = util::Rng(scenario_seed).fork(run + 101);
    Selection sel;
    const std::size_t nb = td.benign.size();
    LEAPS_CHECK_MSG(nb >= 4, "too few benign windows");
    std::vector<std::size_t> benign_order(nb);
    std::iota(benign_order.begin(), benign_order.end(), 0);
    rng.shuffle(benign_order);
    const auto split = static_cast<std::size_t>(
        options_.benign_train_fraction * static_cast<double>(nb));
    const std::vector<std::size_t> train_pool(benign_order.begin(),
                                              benign_order.begin() + split);
    const std::vector<std::size_t> test_pool(benign_order.begin() + split,
                                             benign_order.end());
    const auto pick = [&rng, this](const std::vector<std::size_t>& pool) {
      std::vector<std::size_t> local =
          sample_indices(pool.size(), options_.sample_fraction, rng);
      std::vector<std::size_t> out;
      out.reserve(local.size());
      for (const std::size_t i : local) out.push_back(pool[i]);
      return out;
    };
    sel.benign_train = pick(train_pool);
    sel.benign_test = pick(test_pool);
    sel.mixed_train =
        sample_indices(td.mixed.size(), options_.sample_fraction, rng);
    sel.malicious_test = sample_indices(malicious_windows.X.size(),
                                        options_.sample_fraction, rng);

    sel.train_weighted = td.benign.subset(sel.benign_train);
    sel.train_weighted.append(td.mixed.subset(sel.mixed_train));
    sel.train_plain = sel.train_weighted;
    std::fill(sel.train_plain.weight.begin(), sel.train_plain.weight.end(),
              1.0);
    sel.scaler.fit(sel.train_weighted.X);
    sel.scaler.transform_in_place(sel.train_weighted);
    sel.scaler.transform_in_place(sel.train_plain);
    return sel;
  };

  // ---- hyper-parameter tuning (by default once, on run 0's selection) ---
  const auto tune = [&](const Selection& sel, std::size_t run) {
    util::Rng tune_rng = util::Rng(scenario_seed).fork(run + 101).fork(0x7E57);
    ml::CrossValidationOptions cv_plain = options_.cv;
    cv_plain.weighted_validation = false;
    // The weighted model is also *validated* with its confidences, else CV
    // optimizes against the very label noise the weights correct.
    ml::CrossValidationOptions cv_weighted = options_.cv;
    cv_weighted.weighted_validation = options_.weighted_cv_for_wsvm;
    return std::pair<ml::SvmParams, ml::SvmParams>{
        ml::tune_svm(sel.train_plain, options_.svm_base, cv_plain, tune_rng)
            .best,
        ml::tune_svm(sel.train_weighted, options_.svm_base, cv_weighted,
                     tune_rng)
            .best};
  };

  ml::SvmParams tuned_svm = options_.svm_base;
  ml::SvmParams tuned_wsvm = options_.svm_base;
  if (!options_.tune_every_run) {
    std::tie(tuned_svm, tuned_wsvm) = tune(select(0), 0);
  }

  // ---- one run: train the competing models, evaluate the shared test ----
  struct RunOutcome {
    ml::ConfusionMatrix cm_cgraph, cm_svm, cm_wsvm, cm_hmm, cm_whmm;
    double auc_cgraph = 0.5, auc_svm = 0.5, auc_wsvm = 0.5, auc_hmm = 0.5,
           auc_whmm = 0.5;
  };
  const auto execute_run = [&](std::size_t run) {
    Selection sel = select(run);
    ml::SvmParams params_svm = tuned_svm;
    ml::SvmParams params_wsvm = tuned_wsvm;
    if (options_.tune_every_run) {
      std::tie(params_svm, params_wsvm) = tune(sel, run);
    }
    const ml::SvmModel model_svm =
        ml::SvmTrainer(params_svm).train(sel.train_plain);
    const ml::SvmModel model_wsvm =
        ml::SvmTrainer(params_wsvm).train(sel.train_weighted);

    // HMM sequence models (optional extension).
    ml::HmmClassifier hmm_plain(options_.hmm);
    ml::HmmClassifier hmm_weighted(options_.hmm);
    if (options_.include_hmm) {
      std::vector<ml::Sequence> benign_seqs;
      std::vector<ml::Sequence> mixed_seqs;
      std::vector<double> mixed_seq_weights;
      for (const std::size_t w : sel.benign_train) {
        benign_seqs.push_back(vocabulary.encode(
            benign_part, td.benign_windows.event_indices[w],
            td.preprocessor));
      }
      for (const std::size_t w : sel.mixed_train) {
        mixed_seqs.push_back(vocabulary.encode(
            mixed_part, td.mixed_windows.event_indices[w],
            td.preprocessor));
        mixed_seq_weights.push_back(td.mixed.weight[w]);
      }
      const std::vector<double> ones(mixed_seqs.size(), 1.0);
      hmm_plain.fit(benign_seqs, mixed_seqs, ones, vocabulary.size());
      hmm_weighted.fit(benign_seqs, mixed_seqs, mixed_seq_weights,
                       vocabulary.size());
    }

    ml::CallGraphModel cgraph;
    {
      trace::PartitionedLog cg_benign;
      for (const std::size_t w : sel.benign_train) {
        for (const std::size_t idx : td.benign_windows.event_indices[w]) {
          cg_benign.events.push_back(benign_part.events[idx]);
        }
      }
      trace::PartitionedLog cg_mixed;
      for (const std::size_t w : sel.mixed_train) {
        for (const std::size_t idx : td.mixed_windows.event_indices[w]) {
          cg_mixed.events.push_back(mixed_part.events[idx]);
        }
      }
      cgraph.train(cg_benign, cg_mixed);
    }

    RunOutcome out;
    // Decision scores for threshold-free (AUC) evaluation; larger = more
    // benign for every model.
    std::vector<int> labels;
    std::vector<double> s_cgraph, s_svm, s_wsvm, s_hmm, s_whmm;
    const auto evaluate_window = [&](const trace::PartitionedLog& part,
                                     const WindowedData& windows,
                                     std::size_t w,
                                     const ml::FeatureVector& raw,
                                     int actual) {
      const ml::FeatureVector x = sel.scaler.transform(raw);
      out.cm_svm.add(actual, model_svm.predict(x));
      out.cm_wsvm.add(actual, model_wsvm.predict(x));
      const auto events = window_events(part, windows, w);
      out.cm_cgraph.add(actual, cgraph.predict_window(events));
      labels.push_back(actual);
      s_svm.push_back(model_svm.decision_value(x));
      s_wsvm.push_back(model_wsvm.decision_value(x));
      s_cgraph.push_back(static_cast<double>(cgraph.score_window(events)));
      if (options_.include_hmm) {
        const ml::Sequence seq = vocabulary.encode(
            part, windows.event_indices[w], td.preprocessor);
        out.cm_hmm.add(actual, hmm_plain.predict(seq));
        out.cm_whmm.add(actual, hmm_weighted.predict(seq));
        s_hmm.push_back(-hmm_plain.score(seq));
        s_whmm.push_back(-hmm_weighted.score(seq));
      }
    };
    for (const std::size_t w : sel.benign_test) {
      evaluate_window(benign_part, td.benign_windows, w,
                      td.benign_windows.X[w], /*actual=*/1);
    }
    for (const std::size_t w : sel.malicious_test) {
      evaluate_window(malicious_part, malicious_windows, w,
                      malicious_windows.X[w], /*actual=*/-1);
    }
    out.auc_cgraph = ml::roc_auc(s_cgraph, labels);
    out.auc_svm = ml::roc_auc(s_svm, labels);
    out.auc_wsvm = ml::roc_auc(s_wsvm, labels);
    if (options_.include_hmm) {
      out.auc_hmm = ml::roc_auc(s_hmm, labels);
      out.auc_whmm = ml::roc_auc(s_whmm, labels);
    }
    return out;
  };

  // ---- runs, in parallel (each run is independently seeded; outcomes are
  // aggregated in run order, so the result is identical to the sequential
  // execution) ------------------------------------------------------------
  std::vector<RunOutcome> outcomes(options_.runs);
  {
    const std::size_t workers = options_.parallel_runs
                                    ? std::max<std::size_t>(
                                          1, std::min<std::size_t>(
                                                 options_.runs,
                                                 std::thread::hardware_concurrency()))
                                    : 1;
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t run = next.fetch_add(1);
          if (run >= options_.runs) return;
          outcomes[run] = execute_run(run);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  MetricAccumulator agg_cgraph, agg_svm, agg_wsvm, agg_hmm, agg_whmm;
  for (const RunOutcome& out : outcomes) {
    agg_cgraph.add(ml::Measurements::from(out.cm_cgraph));
    agg_svm.add(ml::Measurements::from(out.cm_svm));
    agg_wsvm.add(ml::Measurements::from(out.cm_wsvm));
    agg_cgraph.auc.add(out.auc_cgraph);
    agg_svm.auc.add(out.auc_svm);
    agg_wsvm.auc.add(out.auc_wsvm);
    result.cgraph.pooled.merge(out.cm_cgraph);
    result.svm.pooled.merge(out.cm_svm);
    result.wsvm.pooled.merge(out.cm_wsvm);
    if (options_.include_hmm) {
      agg_hmm.add(ml::Measurements::from(out.cm_hmm));
      agg_whmm.add(ml::Measurements::from(out.cm_whmm));
      agg_hmm.auc.add(out.auc_hmm);
      agg_whmm.auc.add(out.auc_whmm);
      result.hmm.pooled.merge(out.cm_hmm);
      result.whmm.pooled.merge(out.cm_whmm);
    }
  }

  result.runs = options_.runs;
  result.cgraph.mean = agg_cgraph.mean();
  result.cgraph.stddev = agg_cgraph.stddev();
  result.cgraph.auc = agg_cgraph.auc.mean();
  result.svm.auc = agg_svm.auc.mean();
  result.wsvm.auc = agg_wsvm.auc.mean();
  result.hmm.auc = agg_hmm.auc.mean();
  result.whmm.auc = agg_whmm.auc.mean();
  result.svm.mean = agg_svm.mean();
  result.svm.stddev = agg_svm.stddev();
  result.svm.params = tuned_svm;
  result.wsvm.mean = agg_wsvm.mean();
  result.wsvm.stddev = agg_wsvm.stddev();
  result.wsvm.params = tuned_wsvm;
  if (options_.include_hmm) {
    result.hmm.mean = agg_hmm.mean();
    result.hmm.stddev = agg_hmm.stddev();
    result.whmm.mean = agg_whmm.mean();
    result.whmm.stddev = agg_whmm.stddev();
  }
  return result;
}

namespace {

void append_measurements(std::ostringstream& os, const ml::Measurements& m) {
  os << util::fixed(m.acc, 3) << "  " << util::fixed(m.ppv, 3) << "  "
     << util::fixed(m.tpr, 3) << "  " << util::fixed(m.tnr, 3) << "  "
     << util::fixed(m.npv, 3);
}

}  // namespace

std::string format_result_header(bool with_models) {
  std::ostringstream os;
  os << std::left;
  os.width(34);
  os << "Name";
  if (with_models) {
    os << "Model   ";
  }
  os << "ACC    PPV    TPR    TNR    NPV";
  return os.str();
}

std::string format_result_row(const ExperimentResult& r, bool with_models) {
  std::ostringstream os;
  auto name_col = [&os, &r](std::string_view model) {
    os << std::left;
    os.width(34);
    os << r.spec.name;
    if (!model.empty()) {
      os << std::left;
      os.width(8);
      os << model;
    }
  };
  if (!with_models) {
    name_col("");
    append_measurements(os, r.wsvm.mean);
    return os.str();
  }
  name_col("CGraph");
  append_measurements(os, r.cgraph.mean);
  os << '\n';
  name_col("SVM");
  append_measurements(os, r.svm.mean);
  os << '\n';
  name_col("WSVM");
  append_measurements(os, r.wsvm.mean);
  return os.str();
}

}  // namespace leaps::core
