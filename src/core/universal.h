// Universal (cross-application) classifier — Section II-B-2:
//
//   "We point out that we use the application-wise binary classifier only
//    for the convenience of evaluation. When applied to attack detection
//    in real situations, LEAPS can coalesce all application data from the
//    system event log to learn a universal classifier for testing."
//
// train_universal() does exactly that: one Preprocessor (shared Lib/Func
// clusterers) fitted over every application's logs, per-application CFG
// weight assessment (each application has its own benign CFG oracle), all
// windows pooled into one weighted training set, and a single WSVM.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ml/metrics.h"

namespace leaps::core {

/// One application's contribution: its clean trace, its (possibly noisy)
/// mixed trace, and a pure-malicious trace for evaluation.
struct AppLogs {
  std::string name;
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  trace::PartitionedLog malicious;
};

struct UniversalOptions {
  PipelineOptions pipeline;
  ml::SvmParams svm{.lambda = 10.0};
  /// Benign windows reserved for training (rest evaluate).
  double benign_train_fraction = 0.5;
  std::uint64_t seed = 7;
};

struct UniversalEvaluation {
  /// Per-application measurements of the single shared detector.
  std::map<std::string, ml::Measurements> per_app;
  /// Pooled confusion across all applications.
  ml::Measurements pooled;
  /// The universal detector itself, ready to scan any application's slice.
  Detector detector;
};

/// Trains and evaluates the universal classifier. Requires at least one
/// application and at least 4 benign windows per application.
UniversalEvaluation train_universal(const std::vector<AppLogs>& apps,
                                    const UniversalOptions& options);

}  // namespace leaps::core
