#include "core/universal.h"

#include <numeric>

#include "cfg/inference.h"
#include "cfg/weight.h"
#include "util/check.h"
#include "util/rng.h"

namespace leaps::core {

UniversalEvaluation train_universal(const std::vector<AppLogs>& apps,
                                    const UniversalOptions& options) {
  LEAPS_CHECK_MSG(!apps.empty(), "universal classifier needs applications");

  // --- one shared feature space across all applications -----------------
  Preprocessor preprocessor(options.pipeline.preprocess);
  {
    std::vector<const trace::PartitionedLog*> all;
    for (const AppLogs& app : apps) {
      all.push_back(&app.benign);
      all.push_back(&app.mixed);
    }
    preprocessor.fit(all);
  }

  // --- per-application CFG weights, pooled training set -----------------
  const cfg::CfgInference inference(options.pipeline.inference);
  ml::Dataset train;
  struct EvalSlice {
    std::vector<ml::FeatureVector> benign_test;
    std::vector<ml::FeatureVector> malicious_test;
  };
  std::map<std::string, EvalSlice> eval;

  util::Rng rng(options.seed);
  for (const AppLogs& app : apps) {
    const WindowedData benign_w = preprocessor.make_windows(app.benign);
    const WindowedData mixed_w = preprocessor.make_windows(app.mixed);
    const WindowedData malicious_w = preprocessor.make_windows(app.malicious);
    LEAPS_CHECK_MSG(benign_w.X.size() >= 4,
                    "too few benign windows for " + app.name);

    // The application's own benign CFG is its oracle (Algorithm 2 is
    // inherently per-application — CFGs of different binaries share no
    // address space).
    const cfg::InferredCfg bcfg = inference.infer(app.benign);
    const cfg::InferredCfg mcfg = inference.infer(app.mixed);
    const cfg::WeightAssessor assessor(bcfg.graph);
    const auto benignity = assessor.assess(mcfg);

    // Benign windows: half train (+1, weight 1), half evaluate.
    std::vector<std::size_t> order(benign_w.X.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const auto split = static_cast<std::size_t>(
        options.benign_train_fraction * static_cast<double>(order.size()));
    for (std::size_t k = 0; k < order.size(); ++k) {
      if (k < split) {
        train.add(benign_w.X[order[k]], 1, 1.0);
      } else {
        eval[app.name].benign_test.push_back(benign_w.X[order[k]]);
      }
    }
    // Mixed windows: negatives with CFG-derived weights.
    for (std::size_t w = 0; w < mixed_w.X.size(); ++w) {
      double malice = 0.0;
      for (const std::size_t idx : mixed_w.event_indices[w]) {
        const auto it = benignity.find(app.mixed.events[idx].seq);
        const double b =
            it == benignity.end() ? options.pipeline.default_benignity
                                  : it->second;
        malice += 1.0 - std::clamp(b, 0.0, 1.0);
      }
      train.add(mixed_w.X[w], -1,
                malice / static_cast<double>(
                             mixed_w.event_indices[w].size()));
    }
    for (const ml::FeatureVector& x : malicious_w.X) {
      eval[app.name].malicious_test.push_back(x);
    }
  }

  // --- one detector for the whole machine --------------------------------
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  ml::Dataset scaled = train;
  scaler.transform_in_place(scaled);
  const ml::SvmModel model = ml::SvmTrainer(options.svm).train(scaled);

  UniversalEvaluation result{
      {}, {}, Detector(std::move(preprocessor), scaler, model)};

  ml::ConfusionMatrix pooled;
  for (const auto& [name, slice] : eval) {
    ml::ConfusionMatrix cm;
    for (const ml::FeatureVector& x : slice.benign_test) {
      cm.add(1, result.detector.predict(x));
    }
    for (const ml::FeatureVector& x : slice.malicious_test) {
      cm.add(-1, result.detector.predict(x));
    }
    result.per_app[name] = ml::Measurements::from(cm);
    pooled.merge(cm);
  }
  result.pooled = ml::Measurements::from(pooled);
  return result;
}

}  // namespace leaps::core
