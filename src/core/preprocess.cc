#include "core/preprocess.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace leaps::core {

void SetClusterer::fit(const std::vector<ml::StringSet>& sets) {
  LEAPS_SPAN("preprocess.cluster");
  LEAPS_CHECK_MSG(!sets.empty(), "SetClusterer::fit with no sets");
  // Deduplicate while keeping a stable order.
  std::map<ml::StringSet, int> seen;
  unique_sets_.clear();
  for (const ml::StringSet& s : sets) {
    LEAPS_DCHECK(std::is_sorted(s.begin(), s.end()));
    if (seen.emplace(s, 0).second) unique_sets_.push_back(s);
  }
  // Condensed flat matrix end-to-end: the Jaccard builder fills it in
  // parallel and the clusterer consumes the same allocation as its working
  // buffer (moved, not copied).
  ml::CondensedMatrix dm = ml::jaccard_condensed(unique_sets_);
  const ml::HierarchicalClusterer clusterer(options_);
  result_ = clusterer.cluster(std::move(dm));
  exact_.clear();
  for (std::size_t i = 0; i < unique_sets_.size(); ++i) {
    exact_[unique_sets_[i]] = result_.assignment[i];
  }
}

double SetClusterer::position(int cluster_id) const {
  LEAPS_CHECK_MSG(fitted(), "SetClusterer used before fit()");
  LEAPS_CHECK_MSG(cluster_id >= 0 && cluster_id < result_.cluster_count,
                  "cluster id out of range");
  return result_.positions[static_cast<std::size_t>(cluster_id)];
}

SetClusterer SetClusterer::from_state(ml::ClusterOptions options,
                                      std::vector<ml::StringSet> unique_sets,
                                      ml::ClusterResult result) {
  LEAPS_CHECK_MSG(unique_sets.size() == result.assignment.size(),
                  "clusterer state mismatch");
  SetClusterer c(options);
  c.unique_sets_ = std::move(unique_sets);
  c.result_ = std::move(result);
  for (std::size_t i = 0; i < c.unique_sets_.size(); ++i) {
    c.exact_[c.unique_sets_[i]] = c.result_.assignment[i];
  }
  return c;
}

int SetClusterer::assign(const ml::StringSet& set) const {
  LEAPS_CHECK_MSG(fitted(), "SetClusterer used before fit()");
  const auto it = exact_.find(set);
  if (it != exact_.end()) return it->second;
  // Unseen set: nearest training set's cluster.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < unique_sets_.size(); ++i) {
    const double d = ml::set_dissimilarity(set, unique_sets_[i]);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  return result_.assignment[best_idx];
}

void TupleVocabulary::fit(
    const std::vector<const trace::PartitionedLog*>& logs,
    const Preprocessor& preprocessor) {
  LEAPS_CHECK_MSG(preprocessor.fitted(), "vocabulary needs a fitted preprocessor");
  ids_.clear();
  for (const trace::PartitionedLog* log : logs) {
    LEAPS_CHECK(log != nullptr);
    for (const trace::PartitionedEvent& e : log->events) {
      const EventTuple t = preprocessor.tuple(e);
      const auto key =
          std::make_tuple(t.event_type, t.lib_cluster, t.func_cluster);
      ids_.emplace(key, static_cast<int>(ids_.size()) + 1);
    }
  }
}

int TupleVocabulary::symbol(const EventTuple& tuple) const {
  const auto it = ids_.find(
      std::make_tuple(tuple.event_type, tuple.lib_cluster,
                      tuple.func_cluster));
  return it == ids_.end() ? 0 : it->second;
}

std::vector<int> TupleVocabulary::encode(
    const trace::PartitionedLog& log,
    const std::vector<std::size_t>& event_indices,
    const Preprocessor& preprocessor) const {
  LEAPS_CHECK_MSG(fitted(), "TupleVocabulary used before fit()");
  std::vector<int> out;
  out.reserve(event_indices.size());
  for (const std::size_t idx : event_indices) {
    LEAPS_CHECK(idx < log.events.size());
    out.push_back(symbol(preprocessor.tuple(log.events[idx])));
  }
  return out;
}

ml::StringSet Preprocessor::lib_set(const trace::PartitionedEvent& event) {
  ml::StringSet out;
  out.reserve(event.system_stack.size());
  for (const trace::StackFrame& f : event.system_stack) {
    out.push_back(f.module);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ml::StringSet Preprocessor::func_set(const trace::PartitionedEvent& event) {
  ml::StringSet out;
  out.reserve(event.system_stack.size());
  for (const trace::StackFrame& f : event.system_stack) {
    // Function names are qualified by module: ReadFile exists in both
    // kernel32 and kernelbase, and those are different functions.
    out.push_back(f.module + "!" + f.function);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Preprocessor::fit(
    const std::vector<const trace::PartitionedLog*>& logs) {
  LEAPS_SPAN("preprocess.fit");
  LEAPS_CHECK_MSG(!logs.empty(), "Preprocessor::fit with no logs");
  std::vector<ml::StringSet> lib_sets;
  std::vector<ml::StringSet> func_sets;
  for (const trace::PartitionedLog* log : logs) {
    LEAPS_CHECK(log != nullptr);
    for (const trace::PartitionedEvent& e : log->events) {
      lib_sets.push_back(lib_set(e));
      func_sets.push_back(func_set(e));
    }
  }
  libs_ = SetClusterer(options_.lib_clustering);
  funcs_ = SetClusterer(options_.func_clustering);
  libs_.fit(lib_sets);
  funcs_.fit(func_sets);
}

Preprocessor Preprocessor::from_state(PreprocessOptions options,
                                      SetClusterer libs, SetClusterer funcs) {
  Preprocessor p(options);
  p.libs_ = std::move(libs);
  p.funcs_ = std::move(funcs);
  return p;
}

EventTuple Preprocessor::tuple(const trace::PartitionedEvent& event) const {
  LEAPS_CHECK_MSG(fitted(), "Preprocessor used before fit()");
  EventTuple t;
  t.event_type = trace::event_type_id(event.type);
  t.lib_cluster = libs_.assign(lib_set(event));
  t.func_cluster = funcs_.assign(func_set(event));
  t.lib_coord = libs_.position(t.lib_cluster);
  t.func_coord = funcs_.position(t.func_cluster);
  return t;
}

EventTuple TupleCodec::tuple(const Preprocessor& preprocessor,
                             const trace::TokenTable& table,
                             const trace::CompactEvent& event) const {
  LEAPS_CHECK_MSG(preprocessor.fitted(), "Preprocessor used before fit()");
  EventTuple t;
  t.event_type = trace::event_type_id(event.type);
  const SetClusterer& libs = preprocessor.lib_clusterer();
  const SetClusterer& funcs = preprocessor.func_clusterer();
  const auto& lib_slot = libs_.get(event.lib_id, [&](Slot& slot) {
    slot.cluster = libs.assign(table.lib_set(event.lib_id));
    slot.coord = libs.position(slot.cluster);
  });
  const auto& func_slot = funcs_.get(event.func_id, [&](Slot& slot) {
    slot.cluster = funcs.assign(table.func_set(event.func_id));
    slot.coord = funcs.position(slot.cluster);
  });
  t.lib_cluster = lib_slot.cluster;
  t.lib_coord = lib_slot.coord;
  t.func_cluster = func_slot.cluster;
  t.func_coord = func_slot.coord;
  return t;
}

WindowedData Preprocessor::make_windows(
    const trace::PartitionedLog& log) const {
  LEAPS_SPAN("preprocess.windows");
  LEAPS_CHECK_MSG(fitted(), "Preprocessor used before fit()");
  LEAPS_CHECK_MSG(options_.window >= 1, "window must be >= 1");
  WindowedData out;
  const std::size_t w = options_.window;
  const std::size_t count = log.events.size() / w;
  out.X.reserve(count);
  out.event_indices.reserve(count);
  for (std::size_t win = 0; win < count; ++win) {
    ml::FeatureVector x;
    x.reserve(3 * w);
    std::vector<std::size_t> indices;
    indices.reserve(w);
    for (std::size_t k = 0; k < w; ++k) {
      const std::size_t idx = win * w + k;
      const EventTuple t = tuple(log.events[idx]);
      x.push_back(static_cast<double>(t.event_type));
      x.push_back(t.lib_coord);
      x.push_back(t.func_coord);
      indices.push_back(idx);
    }
    out.X.push_back(std::move(x));
    out.event_indices.push_back(std::move(indices));
  }
  return out;
}

}  // namespace leaps::core
