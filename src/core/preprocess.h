// Data Preprocessing Module (Section III-A, Figure 2).
//
// Turns partitioned events into discretized feature tuples:
//   {Event_Type, Lib, Func}
// where Event_Type maps to its integer id and the Lib/Func *sets* of the
// system stack trace are replaced by hierarchical-cluster numbers (UPGMA,
// Jaccard distance, Eqn. 1). Tuples of `window` consecutive events are then
// coalesced into one (3 × window)-dimensional data point (Section V-A-2:
// 10 events → 30 dimensions).
//
// The clusterers are fit on the training logs; unseen test sets are mapped
// to the nearest training set's cluster.
#pragma once

#include <cstddef>
#include <map>
#include <tuple>
#include <vector>

#include "ml/dataset.h"
#include "ml/distance.h"
#include "ml/hcluster.h"
#include "trace/partition.h"

namespace leaps::core {

/// Clusters string sets and assigns cluster ids to unseen sets by
/// nearest-neighbor among the training sets.
class SetClusterer {
 public:
  explicit SetClusterer(ml::ClusterOptions options = {})
      : options_(options) {}

  /// Deduplicates, builds the Jaccard matrix, runs UPGMA, numbers clusters
  /// in dendrogram leaf order.
  void fit(const std::vector<ml::StringSet>& sets);

  /// Cluster id for a set: exact training match, else the cluster of the
  /// nearest (Eqn. 1) training set. Must be fitted.
  int assign(const ml::StringSet& set) const;

  /// The cluster's coordinate on the dendrogram axis — the discretized
  /// feature value (similar clusters sit numerically close, dissimilar
  /// clusters far apart).
  double position(int cluster_id) const;

  int cluster_count() const { return result_.cluster_count; }
  bool fitted() const { return !unique_sets_.empty(); }
  const ml::ClusterOptions& options() const { return options_; }
  std::size_t unique_set_count() const { return unique_sets_.size(); }
  const ml::ClusterResult& result() const { return result_; }
  const std::vector<ml::StringSet>& unique_sets() const {
    return unique_sets_;
  }

  /// Reconstructs a fitted clusterer from serialized state (persistence).
  static SetClusterer from_state(ml::ClusterOptions options,
                                 std::vector<ml::StringSet> unique_sets,
                                 ml::ClusterResult result);

 private:
  ml::ClusterOptions options_;
  std::vector<ml::StringSet> unique_sets_;
  std::map<ml::StringSet, int> exact_;  // set -> cluster id
  ml::ClusterResult result_;
};

/// The discretized 3-tuple of one event (Figure 2's "@107 7 2 40" row).
/// The *_cluster fields are the cluster ids; the *_coord fields are the
/// dissimilarity-scaled cluster positions actually used as feature values.
struct EventTuple {
  int event_type = 0;
  int lib_cluster = 0;
  int func_cluster = 0;
  double lib_coord = 0.0;
  double func_coord = 0.0;
};

/// Feature windows with provenance back to the source events (needed by the
/// CGraph baseline and by weight aggregation).
struct WindowedData {
  std::vector<ml::FeatureVector> X;
  /// X[w] was built from log.events[event_indices[w][0..window)].
  std::vector<std::vector<std::size_t>> event_indices;
};

struct PreprocessOptions {
  ml::ClusterOptions lib_clustering{.cut_distance = 0.3, .max_clusters = 0};
  ml::ClusterOptions func_clustering{.cut_distance = 0.35, .max_clusters = 0};
  /// Consecutive events per data point (paper: 10 → 30 dimensions).
  std::size_t window = 10;
};

/// Dense symbol ids for discretized event tuples — the observation alphabet
/// of the sequence models (Section VI-B). Symbol 0 is reserved for tuples
/// unseen at fit time.
class TupleVocabulary {
 public:
  /// Collects every distinct tuple the (fitted) preprocessor produces on
  /// the given logs.
  void fit(const std::vector<const trace::PartitionedLog*>& logs,
           const class Preprocessor& preprocessor);

  /// Symbol id of a tuple: [1, size) for known tuples, 0 for unknown.
  int symbol(const EventTuple& tuple) const;

  /// Alphabet size including the unknown symbol.
  std::size_t size() const { return ids_.size() + 1; }
  bool fitted() const { return !ids_.empty(); }

  /// Encodes a window of events (by log indices) into a symbol sequence.
  std::vector<int> encode(const trace::PartitionedLog& log,
                          const std::vector<std::size_t>& event_indices,
                          const Preprocessor& preprocessor) const;

 private:
  std::map<std::tuple<int, int, int>, int> ids_;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessOptions options = {}) : options_(options) {}

  /// Fits the Lib and Func clusterers on the union of the given logs
  /// (training phase: benign + mixed).
  void fit(const std::vector<const trace::PartitionedLog*>& logs);

  /// Lib set (module names) / func set ("module!function") of one event's
  /// system stack trace, sorted and deduplicated.
  static ml::StringSet lib_set(const trace::PartitionedEvent& event);
  static ml::StringSet func_set(const trace::PartitionedEvent& event);

  EventTuple tuple(const trace::PartitionedEvent& event) const;

  /// Non-overlapping windows over the log. A trailing partial window is
  /// dropped. Must be fitted.
  WindowedData make_windows(const trace::PartitionedLog& log) const;

  const SetClusterer& lib_clusterer() const { return libs_; }
  const SetClusterer& func_clusterer() const { return funcs_; }
  std::size_t window() const { return options_.window; }
  bool fitted() const { return libs_.fitted(); }
  const PreprocessOptions& options() const { return options_; }

  /// Reconstructs a fitted preprocessor from serialized state.
  static Preprocessor from_state(PreprocessOptions options, SetClusterer libs,
                                 SetClusterer funcs);

 private:
  PreprocessOptions options_;
  SetClusterer libs_{};
  SetClusterer funcs_{};
};

}  // namespace leaps::core
