// Data Preprocessing Module (Section III-A, Figure 2).
//
// Turns partitioned events into discretized feature tuples:
//   {Event_Type, Lib, Func}
// where Event_Type maps to its integer id and the Lib/Func *sets* of the
// system stack trace are replaced by hierarchical-cluster numbers (UPGMA,
// Jaccard distance, Eqn. 1). Tuples of `window` consecutive events are then
// coalesced into one (3 × window)-dimensional data point (Section V-A-2:
// 10 events → 30 dimensions).
//
// The clusterers are fit on the training logs; unseen test sets are mapped
// to the nearest training set's cluster.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "ml/dataset.h"
#include "ml/distance.h"
#include "ml/hcluster.h"
#include "trace/intern.h"
#include "trace/partition.h"

namespace leaps::core {

/// Clusters string sets and assigns cluster ids to unseen sets by
/// nearest-neighbor among the training sets.
class SetClusterer {
 public:
  explicit SetClusterer(ml::ClusterOptions options = {})
      : options_(options) {}

  /// Deduplicates, builds the Jaccard matrix, runs UPGMA, numbers clusters
  /// in dendrogram leaf order.
  void fit(const std::vector<ml::StringSet>& sets);

  /// Cluster id for a set: exact training match, else the cluster of the
  /// nearest (Eqn. 1) training set. Must be fitted.
  int assign(const ml::StringSet& set) const;

  /// The cluster's coordinate on the dendrogram axis — the discretized
  /// feature value (similar clusters sit numerically close, dissimilar
  /// clusters far apart).
  double position(int cluster_id) const;

  int cluster_count() const { return result_.cluster_count; }
  bool fitted() const { return !unique_sets_.empty(); }
  const ml::ClusterOptions& options() const { return options_; }
  std::size_t unique_set_count() const { return unique_sets_.size(); }
  const ml::ClusterResult& result() const { return result_; }
  const std::vector<ml::StringSet>& unique_sets() const {
    return unique_sets_;
  }

  /// Reconstructs a fitted clusterer from serialized state (persistence).
  static SetClusterer from_state(ml::ClusterOptions options,
                                 std::vector<ml::StringSet> unique_sets,
                                 ml::ClusterResult result);

 private:
  ml::ClusterOptions options_;
  std::vector<ml::StringSet> unique_sets_;
  std::map<ml::StringSet, int> exact_;  // set -> cluster id
  ml::ClusterResult result_;
};

/// The discretized 3-tuple of one event (Figure 2's "@107 7 2 40" row).
/// The *_cluster fields are the cluster ids; the *_coord fields are the
/// dissimilarity-scaled cluster positions actually used as feature values.
struct EventTuple {
  int event_type = 0;
  int lib_cluster = 0;
  int func_cluster = 0;
  double lib_coord = 0.0;
  double func_coord = 0.0;
};

/// Feature windows with provenance back to the source events (needed by the
/// CGraph baseline and by weight aggregation).
struct WindowedData {
  std::vector<ml::FeatureVector> X;
  /// X[w] was built from log.events[event_indices[w][0..window)].
  std::vector<std::vector<std::size_t>> event_indices;
};

struct PreprocessOptions {
  ml::ClusterOptions lib_clustering{.cut_distance = 0.3, .max_clusters = 0};
  ml::ClusterOptions func_clustering{.cut_distance = 0.35, .max_clusters = 0};
  /// Consecutive events per data point (paper: 10 → 30 dimensions).
  std::size_t window = 10;
};

/// Dense symbol ids for discretized event tuples — the observation alphabet
/// of the sequence models (Section VI-B). Symbol 0 is reserved for tuples
/// unseen at fit time.
class TupleVocabulary {
 public:
  /// Collects every distinct tuple the (fitted) preprocessor produces on
  /// the given logs.
  void fit(const std::vector<const trace::PartitionedLog*>& logs,
           const class Preprocessor& preprocessor);

  /// Symbol id of a tuple: [1, size) for known tuples, 0 for unknown.
  int symbol(const EventTuple& tuple) const;

  /// Alphabet size including the unknown symbol.
  std::size_t size() const { return ids_.size() + 1; }
  bool fitted() const { return !ids_.empty(); }

  /// Encodes a window of events (by log indices) into a symbol sequence.
  std::vector<int> encode(const trace::PartitionedLog& log,
                          const std::vector<std::size_t>& event_indices,
                          const Preprocessor& preprocessor) const;

 private:
  std::map<std::tuple<int, int, int>, int> ids_;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessOptions options = {}) : options_(options) {}

  /// Fits the Lib and Func clusterers on the union of the given logs
  /// (training phase: benign + mixed).
  void fit(const std::vector<const trace::PartitionedLog*>& logs);

  /// Lib set (module names) / func set ("module!function") of one event's
  /// system stack trace, sorted and deduplicated.
  static ml::StringSet lib_set(const trace::PartitionedEvent& event);
  static ml::StringSet func_set(const trace::PartitionedEvent& event);

  EventTuple tuple(const trace::PartitionedEvent& event) const;

  /// Non-overlapping windows over the log. A trailing partial window is
  /// dropped. Must be fitted.
  WindowedData make_windows(const trace::PartitionedLog& log) const;

  const SetClusterer& lib_clusterer() const { return libs_; }
  const SetClusterer& func_clusterer() const { return funcs_; }
  std::size_t window() const { return options_.window; }
  bool fitted() const { return libs_.fitted(); }
  const PreprocessOptions& options() const { return options_; }

  /// Reconstructs a fitted preprocessor from serialized state.
  static Preprocessor from_state(PreprocessOptions options, SetClusterer libs,
                                 SetClusterer funcs);

 private:
  PreprocessOptions options_;
  SetClusterer libs_{};
  SetClusterer funcs_{};
};

/// Concurrent interned-id -> discretized-feature cache: the bridge that
/// lets the serving hot path consume trace::CompactEvent without ever
/// rebuilding the Lib/Func string sets. Each detector owns one codec;
/// the first time a given lib_id/func_id reaches it, the set is fetched
/// from the TokenTable and run through SetClusterer::assign/position
/// exactly once, then every later event carrying that id reads the
/// cached (cluster, coord) pair lock-free. Because assign() is a pure
/// function of the set, and ids map 1:1 to sets, the cached values are
/// byte-identical to what the string path computes per event.
///
/// Thread safety: fully thread-safe. Reads are lock-free (per-entry
/// release/acquire publication in append-only segments); a miss computes
/// under a mutex (one thread computes, others wait briefly).
///
/// Ids are only meaningful relative to the TokenTable that minted them:
/// feed one codec from one table (the serving layer always uses
/// trace::TokenTable::global()).
class TupleCodec {
 public:
  TupleCodec() = default;
  TupleCodec(const TupleCodec&) = delete;
  TupleCodec& operator=(const TupleCodec&) = delete;

  /// The discretized 3-tuple of one compact event; identical to
  /// `preprocessor.tuple(table.materialize(event))`.
  EventTuple tuple(const Preprocessor& preprocessor,
                   const trace::TokenTable& table,
                   const trace::CompactEvent& event) const;

  /// Distinct (lib_id + func_id) entries resolved so far.
  std::size_t cached() const {
    return libs_.size() + funcs_.size();
  }

 private:
  struct Slot {
    std::atomic<int> state{0};  // 0 = empty, 1 = ready
    int cluster = 0;
    double coord = 0.0;
  };

  /// Append-only id-indexed slot table (ids are dense, so segments fill
  /// front to back; a segment is allocated the first time an id in its
  /// range arrives).
  class IdCache {
   public:
    static constexpr std::size_t kSegBits = 10;  // 1024 slots per segment
    static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;
    static constexpr std::size_t kMaxSegments = 4096;  // ~4.2M ids

    IdCache() = default;
    ~IdCache() {
      for (auto& s : segments_) delete[] s.load(std::memory_order_relaxed);
    }

    /// Returns the slot for `id`, computing it with `fill` under the
    /// cache mutex when absent. `fill` writes cluster/coord.
    template <typename Fill>
    const Slot& get(std::uint32_t id, Fill&& fill) const {
      Slot* slot = find(id);
      if (slot != nullptr &&
          slot->state.load(std::memory_order_acquire) == 1) {
        return *slot;
      }
      const std::lock_guard<std::mutex> lock(mu_);
      slot = ensure(id);
      if (slot->state.load(std::memory_order_relaxed) != 1) {
        fill(*slot);
        slot->state.store(1, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
      }
      return *slot;
    }

    std::size_t size() const {
      return size_.load(std::memory_order_relaxed);
    }

   private:
    Slot* find(std::uint32_t id) const {
      Slot* seg = segments_[id >> kSegBits].load(std::memory_order_acquire);
      return seg == nullptr ? nullptr : &seg[id & (kSegSize - 1)];
    }
    Slot* ensure(std::uint32_t id) const {  // caller holds mu_
      const std::size_t seg_index = id >> kSegBits;
      Slot* seg = segments_[seg_index].load(std::memory_order_relaxed);
      if (seg == nullptr) {
        seg = new Slot[kSegSize];
        segments_[seg_index].store(seg, std::memory_order_release);
      }
      return &seg[id & (kSegSize - 1)];
    }

    mutable std::array<std::atomic<Slot*>, kMaxSegments> segments_{};
    mutable std::atomic<std::size_t> size_{0};
    mutable std::mutex mu_;
  };

  IdCache libs_;
  IdCache funcs_;
};

}  // namespace leaps::core
