// Ingest-boundary token interning (the serving hot path's event form).
//
// The classification path only ever consumes an event through three
// projections: its EventType id, the *set* of system-stack modules
// (Lib), and the set of "module!function" names (Func). Carrying the
// full string-bearing PartitionedEvent through the queues and workers
// means allocating and hashing those strings once per event per stage.
// TokenTable hoists all of that to the ingest boundary: a producer
// interns each event exactly once into a CompactEvent — six integers —
// and everything downstream (queues, workers, Detector::Stream) works
// with uint32 ids. Strings are touched again only on the cold paths
// (a first-seen set reaching a detector's TupleCodec, a tapped window
// being materialized for the online/audit consumers).
//
// Interning is exact, not lossy: the table stores the first-seen
// system-stack frame sequence (addresses included) and app-stack
// address sequence verbatim, so materialize() reconstructs a
// PartitionedEvent byte-identical to the original. The Lib/Func sets
// derived at intern time use the same sort-and-deduplicate recipe as
// core::Preprocessor::lib_set/func_set (asserted by tests), which is
// what makes id-keyed feature caching downstream byte-identical to the
// string path.
//
// Thread safety: fully thread-safe. Lookups by id are lock-free
// (append-only segmented storage, entries never move); interning takes
// a per-domain shared_mutex — shared for the common already-seen case,
// exclusive only for first-seen tokens. Ids are dense per domain and
// stable for the table's lifetime; they are NOT stable across processes
// (never persist them — durability serializes materialized events).
//
// Memory: the table only grows (every distinct stack sequence is kept
// forever). Real deployments recycle stack shapes heavily, so growth
// flattens fast; an adversary can still inflate it with synthetic
// stacks, which stats() exposes for monitoring. Bounded/evicting
// interning is future work (see DESIGN.md §14).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/partition.h"

namespace leaps::trace {

/// Sorted, deduplicated string set — mirrors ml::StringSet (trace sits
/// below ml in the layering, so the alias is restated here).
using StringSet = std::vector<std::string>;

/// The interned hot-path event: what PartitionedEvent becomes at the
/// ingest boundary. Plain integers, no heap state — cheap to copy, to
/// queue in batches, and to keep in pooled buffers.
struct CompactEvent {
  std::uint64_t seq = 0;
  std::uint32_t tid = 0;
  std::uint32_t sys_id = 0;   // system-stack frame sequence
  std::uint32_t app_id = 0;   // app-stack address sequence
  std::uint32_t lib_id = 0;   // derived Lib set (modules)
  std::uint32_t func_id = 0;  // derived Func set ("module!function")
  EventType type = EventType::kSysCallEnter;
};

/// Append-only id -> value storage with lock-free reads: values live in
/// fixed-size heap segments that never move or shrink, so a reference
/// obtained by id stays valid for the store's lifetime. append() must be
/// serialized externally (the TokenTable domain mutex); readers need no
/// lock.
template <typename T>
class SegmentedStore {
 public:
  static constexpr std::size_t kSegBits = 12;  // 4096 entries per segment
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;
  static constexpr std::size_t kMaxSegments = 4096;  // ~16.7M ids per domain

  SegmentedStore() = default;
  SegmentedStore(const SegmentedStore&) = delete;
  SegmentedStore& operator=(const SegmentedStore&) = delete;
  ~SegmentedStore() {
    for (auto& s : segments_) delete[] s.load(std::memory_order_relaxed);
  }

  const T& operator[](std::uint32_t id) const {
    const T* seg =
        segments_[id >> kSegBits].load(std::memory_order_acquire);
    return seg[id & (kSegSize - 1)];
  }

  /// Caller must hold the owning domain's exclusive lock.
  std::uint32_t append(T value) {
    const std::uint32_t id = size_.load(std::memory_order_relaxed);
    const std::size_t seg_index = id >> kSegBits;
    T* seg = segments_[seg_index].load(std::memory_order_relaxed);
    if (seg == nullptr) {
      seg = new T[kSegSize];
      segments_[seg_index].store(seg, std::memory_order_release);
    }
    seg[id & (kSegSize - 1)] = std::move(value);
    size_.store(id + 1, std::memory_order_release);
    return id;
  }

  std::uint32_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  std::array<std::atomic<T*>, kMaxSegments> segments_{};
  std::atomic<std::uint32_t> size_{0};
};

class TokenTable {
 public:
  TokenTable() = default;
  TokenTable(const TokenTable&) = delete;
  TokenTable& operator=(const TokenTable&) = delete;

  /// The process-wide table the serving layer interns through.
  static TokenTable& global();

  /// Interns every projection of `event` and returns its compact form.
  CompactEvent compact(const PartitionedEvent& event);

  /// Exact reconstruction: equal to the event compact() consumed, field
  /// for field (first-seen stack sequences are stored verbatim).
  PartitionedEvent materialize(const CompactEvent& event) const;

  /// Id lookups; references stay valid for the table's lifetime.
  const StringSet& lib_set(std::uint32_t lib_id) const;
  const StringSet& func_set(std::uint32_t func_id) const;
  const std::vector<StackFrame>& system_stack(std::uint32_t sys_id) const;
  const std::vector<std::uint64_t>& app_stack(std::uint32_t app_id) const;

  struct Stats {
    std::uint64_t system_stacks = 0;  // distinct frame sequences
    std::uint64_t app_stacks = 0;     // distinct app address sequences
    std::uint64_t lib_sets = 0;       // distinct Lib sets
    std::uint64_t func_sets = 0;      // distinct Func sets
    std::uint64_t hits = 0;           // compact() calls fully cached
    std::uint64_t interned = 0;       // compact() calls that added a token
    /// Approximate heap bytes pinned by interned tokens (string payloads,
    /// stack sequences, and per-entry container headers). The table never
    /// evicts, so this only grows — the leaps_trace_token_table_* gauges
    /// exist to watch it.
    std::uint64_t bytes_retained = 0;
  };
  Stats stats() const;

  /// The sort-and-deduplicate set recipes, restated from
  /// core::Preprocessor::lib_set/func_set (which cannot be called from
  /// this layer). tests/test_serve_fabric.cc asserts they agree.
  static StringSet derive_lib_set(const std::vector<StackFrame>& frames);
  static StringSet derive_func_set(const std::vector<StackFrame>& frames);

 private:
  struct SysEntry {
    std::vector<StackFrame> frames;
    std::uint32_t lib_id = 0;
    std::uint32_t func_id = 0;
  };

  struct FrameSeqHash {
    std::size_t operator()(const std::vector<StackFrame>& frames) const;
  };
  struct AddrSeqHash {
    std::size_t operator()(const std::vector<std::uint64_t>& addrs) const;
  };
  struct StringSetHash {
    std::size_t operator()(const StringSet& set) const;
  };

  /// Interns `set` in one of the two string-set domains. Caller must
  /// hold sys_mu_ exclusively (set interning only happens while a new
  /// system stack is being added, so the sys lock covers these maps too).
  std::uint32_t intern_set(
      StringSet set,
      std::unordered_map<StringSet, std::uint32_t, StringSetHash>& ids,
      SegmentedStore<StringSet>& store);

  mutable std::shared_mutex sys_mu_;
  std::unordered_map<std::vector<StackFrame>, std::uint32_t, FrameSeqHash>
      sys_ids_;
  std::unordered_map<StringSet, std::uint32_t, StringSetHash> lib_ids_;
  std::unordered_map<StringSet, std::uint32_t, StringSetHash> func_ids_;
  SegmentedStore<SysEntry> sys_store_;
  SegmentedStore<StringSet> lib_store_;
  SegmentedStore<StringSet> func_store_;

  mutable std::shared_mutex app_mu_;
  std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, AddrSeqHash>
      app_ids_;
  SegmentedStore<std::vector<std::uint64_t>> app_store_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> interned_{0};
  std::atomic<std::uint64_t> bytes_retained_{0};
};

}  // namespace leaps::trace
