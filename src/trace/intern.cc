#include "trace/intern.h"

#include <algorithm>

#include "obs/registry.h"
#include "util/check.h"

namespace leaps::trace {

namespace {

constexpr std::size_t kHashSeed = 0x9e3779b97f4a7c15ULL;

inline void combine(std::size_t& h, std::size_t v) {
  h ^= v + kHashSeed + (h << 6) + (h >> 2);
}

// Approximate heap footprint of a newly interned token. Counts payload
// bytes plus container headers; deliberately ignores allocator slack and
// the id-map keys (which roughly double it) — the gauge tracks growth, it
// is not an accountant.
std::uint64_t set_bytes(const StringSet& set) {
  std::uint64_t b = sizeof(StringSet) + set.size() * sizeof(std::string);
  for (const std::string& s : set) b += s.size();
  return b;
}

std::uint64_t frames_bytes(const std::vector<StackFrame>& frames) {
  std::uint64_t b = frames.size() * sizeof(StackFrame);
  for (const StackFrame& f : frames) b += f.module.size() + f.function.size();
  return b;
}

}  // namespace

std::size_t TokenTable::FrameSeqHash::operator()(
    const std::vector<StackFrame>& frames) const {
  std::size_t h = frames.size();
  for (const StackFrame& f : frames) {
    combine(h, std::hash<std::uint64_t>{}(f.address));
    combine(h, std::hash<std::string>{}(f.module));
    combine(h, std::hash<std::string>{}(f.function));
  }
  return h;
}

std::size_t TokenTable::AddrSeqHash::operator()(
    const std::vector<std::uint64_t>& addrs) const {
  std::size_t h = addrs.size();
  for (const std::uint64_t a : addrs) {
    combine(h, std::hash<std::uint64_t>{}(a));
  }
  return h;
}

std::size_t TokenTable::StringSetHash::operator()(
    const StringSet& set) const {
  std::size_t h = set.size();
  for (const std::string& s : set) {
    combine(h, std::hash<std::string>{}(s));
  }
  return h;
}

TokenTable& TokenTable::global() {
  static TokenTable* table = [] {
    auto* t = new TokenTable();  // never destroyed
    // The global table is the one the serving hot path interns through,
    // so its growth is fleet-visible state: expose it on the process
    // scrape surface. The registration handle leaks with the table.
    static obs::MetricRegistry::Registration reg =
        obs::MetricRegistry::global().register_collector(
            [t](std::vector<obs::MetricSample>& out) {
              const Stats s = t->stats();
              const auto gauge = [&out](const char* name, const char* help,
                                        std::uint64_t v) {
                obs::MetricSample m;
                m.name = name;
                m.help = help;
                m.type = obs::MetricType::kGauge;
                m.gauge_value = static_cast<std::int64_t>(v);
                out.push_back(std::move(m));
              };
              gauge("leaps_trace_token_table_system_stacks",
                    "distinct system-stack sequences interned",
                    s.system_stacks);
              gauge("leaps_trace_token_table_app_stacks",
                    "distinct app-stack address sequences interned",
                    s.app_stacks);
              gauge("leaps_trace_token_table_lib_sets",
                    "distinct Lib sets interned", s.lib_sets);
              gauge("leaps_trace_token_table_func_sets",
                    "distinct Func sets interned", s.func_sets);
              gauge("leaps_trace_token_table_bytes_retained",
                    "approximate heap bytes pinned by interned tokens",
                    s.bytes_retained);
              obs::MetricSample hits;
              hits.name = "leaps_trace_token_table_hits_total";
              hits.help = "compact() calls served fully from cache";
              hits.type = obs::MetricType::kCounter;
              hits.counter_value = s.hits;
              out.push_back(std::move(hits));
              obs::MetricSample interned;
              interned.name = "leaps_trace_token_table_interned_total";
              interned.help = "compact() calls that added a token";
              interned.type = obs::MetricType::kCounter;
              interned.counter_value = s.interned;
              out.push_back(std::move(interned));
            });
    return t;
  }();
  return *table;
}

StringSet TokenTable::derive_lib_set(const std::vector<StackFrame>& frames) {
  StringSet out;
  out.reserve(frames.size());
  for (const StackFrame& f : frames) out.push_back(f.module);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StringSet TokenTable::derive_func_set(const std::vector<StackFrame>& frames) {
  StringSet out;
  out.reserve(frames.size());
  for (const StackFrame& f : frames) {
    // Functions are module-qualified: ReadFile in kernel32 and in
    // kernelbase are different functions (same rule as the preprocessor).
    out.push_back(f.module + "!" + f.function);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint32_t TokenTable::intern_set(
    StringSet set,
    std::unordered_map<StringSet, std::uint32_t, StringSetHash>& ids,
    SegmentedStore<StringSet>& store) {
  const auto it = ids.find(set);
  if (it != ids.end()) return it->second;
  StringSet key = set;  // map key and stored value are separate copies
  const std::uint32_t id = store.append(std::move(set));
  ids.emplace(std::move(key), id);
  return id;
}

CompactEvent TokenTable::compact(const PartitionedEvent& event) {
  CompactEvent out;
  out.seq = event.seq;
  out.tid = event.tid;
  out.type = event.type;
  bool missed = false;

  // System-stack domain (carries the derived Lib/Func set ids).
  {
    bool hit = false;
    {
      const std::shared_lock lock(sys_mu_);
      const auto it = sys_ids_.find(event.system_stack);
      if (it != sys_ids_.end()) {
        out.sys_id = it->second;
        hit = true;
      }
    }
    if (!hit) {
      const std::unique_lock lock(sys_mu_);
      const auto it = sys_ids_.find(event.system_stack);
      if (it != sys_ids_.end()) {
        out.sys_id = it->second;
      } else {
        missed = true;
        SysEntry entry;
        entry.frames = event.system_stack;
        const std::uint32_t lib_before = lib_store_.size();
        const std::uint32_t func_before = func_store_.size();
        entry.lib_id = intern_set(derive_lib_set(event.system_stack),
                                  lib_ids_, lib_store_);
        entry.func_id = intern_set(derive_func_set(event.system_stack),
                                   func_ids_, func_store_);
        std::uint64_t bytes =
            sizeof(SysEntry) + frames_bytes(entry.frames);
        if (lib_store_.size() > lib_before) {
          bytes += set_bytes(lib_store_[entry.lib_id]);
        }
        if (func_store_.size() > func_before) {
          bytes += set_bytes(func_store_[entry.func_id]);
        }
        bytes_retained_.fetch_add(bytes, std::memory_order_relaxed);
        out.sys_id = sys_store_.append(std::move(entry));
        sys_ids_.emplace(event.system_stack, out.sys_id);
        LEAPS_CHECK_MSG(
            out.sys_id < SegmentedStore<SysEntry>::kMaxSegments *
                             SegmentedStore<SysEntry>::kSegSize,
            "TokenTable system-stack domain exhausted");
      }
    }
    const SysEntry& entry = sys_store_[out.sys_id];
    out.lib_id = entry.lib_id;
    out.func_id = entry.func_id;
  }

  // App-stack domain.
  {
    bool hit = false;
    {
      const std::shared_lock lock(app_mu_);
      const auto it = app_ids_.find(event.app_stack);
      if (it != app_ids_.end()) {
        out.app_id = it->second;
        hit = true;
      }
    }
    if (!hit) {
      const std::unique_lock lock(app_mu_);
      const auto it = app_ids_.find(event.app_stack);
      if (it != app_ids_.end()) {
        out.app_id = it->second;
      } else {
        missed = true;
        bytes_retained_.fetch_add(
            sizeof(std::vector<std::uint64_t>) +
                event.app_stack.size() * sizeof(std::uint64_t),
            std::memory_order_relaxed);
        out.app_id = app_store_.append(event.app_stack);
        app_ids_.emplace(event.app_stack, out.app_id);
      }
    }
  }

  (missed ? interned_ : hits_).fetch_add(1, std::memory_order_relaxed);
  return out;
}

PartitionedEvent TokenTable::materialize(const CompactEvent& event) const {
  PartitionedEvent out;
  out.seq = event.seq;
  out.tid = event.tid;
  out.type = event.type;
  out.app_stack = app_stack(event.app_id);
  out.system_stack = system_stack(event.sys_id);
  return out;
}

const StringSet& TokenTable::lib_set(std::uint32_t lib_id) const {
  return lib_store_[lib_id];
}

const StringSet& TokenTable::func_set(std::uint32_t func_id) const {
  return func_store_[func_id];
}

const std::vector<StackFrame>& TokenTable::system_stack(
    std::uint32_t sys_id) const {
  return sys_store_[sys_id].frames;
}

const std::vector<std::uint64_t>& TokenTable::app_stack(
    std::uint32_t app_id) const {
  return app_store_[app_id];
}

TokenTable::Stats TokenTable::stats() const {
  Stats s;
  s.system_stacks = sys_store_.size();
  s.app_stacks = app_store_.size();
  s.lib_sets = lib_store_.size();
  s.func_sets = func_store_.size();
  s.hits = hits_.load(std::memory_order_relaxed);
  s.interned = interned_.load(std::memory_order_relaxed);
  s.bytes_retained = bytes_retained_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace leaps::trace
