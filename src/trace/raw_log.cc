#include "trace/raw_log.h"

#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace leaps::trace {

void write_raw_log(const RawLog& log, std::ostream& os) {
  os << "# LEAPS raw event trace v1\n";
  os << "PROCESS " << log.process_name << '\n';
  for (const RawModule& m : log.modules) {
    os << "MODULE " << util::hex_addr(m.base) << ' ' << util::hex_addr(m.size)
       << ' ' << m.name << '\n';
  }
  for (const RawSymbol& s : log.symbols) {
    os << "SYMBOL " << util::hex_addr(s.address) << ' ' << s.function << '\n';
  }
  for (const RawEvent& e : log.events) {
    os << "EVENT " << e.seq << ' ' << e.tid << ' ' << event_type_name(e.type)
       << '\n';
    for (std::uint64_t addr : e.stack) {
      os << "STACK " << util::hex_addr(addr) << '\n';
    }
  }
}

std::string raw_log_to_string(const RawLog& log) {
  std::ostringstream os;
  write_raw_log(log, os);
  return os.str();
}

}  // namespace leaps::trace
