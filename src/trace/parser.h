// Raw Log Parser (Section II-B): turns a raw trace into a stack-event
// correlated log, resolving each frame address against the module map and
// symbol table carried in the log header — the same correlate-and-slice role
// Introperf's front end plays for ETW traces in the paper.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "trace/event.h"
#include "trace/module_map.h"
#include "trace/raw_log.h"
#include "util/status.h"

namespace leaps::trace {

/// Parse failure: malformed line, unknown record kind, etc. Carries the
/// 1-based line number of the offending record. RawLogParser converts
/// these to kCorruptInput statuses at its API boundary; the system-log
/// capture parser (system_log.h) still throws it directly.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("raw log parse error at line " +
                           std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Result of parsing: the correlated log plus the module map built from the
/// log's MODULE/SYMBOL records (needed downstream by the stack partitioner).
struct ParsedTrace {
  CorrelatedLog log;
  ModuleMap modules;
};

class RawLogParser {
 public:
  /// Parses the textual raw-log format — an untrusted boundary. Malformed
  /// input yields kCorruptInput (the message carries the 1-based line
  /// number of the offending record), never an exception.
  util::StatusOr<ParsedTrace> parse(std::istream& is) const;
  util::StatusOr<ParsedTrace> parse_string(std::string_view text) const;

  /// Parses an in-memory RawLog (skipping serialization) — used by the
  /// pipeline when simulator output stays in memory. A trusted path: the
  /// RawLog came from the simulator or an already-validated read, so
  /// invariant violations here throw (LEAPS_CHECK semantics).
  ParsedTrace parse_raw(const RawLog& raw) const;
};

}  // namespace leaps::trace
