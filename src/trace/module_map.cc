#include "trace/module_map.h"

#include "util/check.h"

namespace leaps::trace {

void ModuleMap::add_module(ModuleInfo info) {
  LEAPS_CHECK_MSG(info.size > 0, "module with zero size: " + info.name);
  // Reject overlap with the neighbor below and above.
  auto it = by_base_.upper_bound(info.base);
  if (it != by_base_.begin()) {
    const ModuleInfo& below = modules_list_[std::prev(it)->second];
    LEAPS_CHECK_MSG(below.base + below.size <= info.base,
                    "module overlaps " + below.name + ": " + info.name);
  }
  if (it != by_base_.end()) {
    const ModuleInfo& above = modules_list_[it->second];
    LEAPS_CHECK_MSG(info.base + info.size <= above.base,
                    "module overlaps " + above.name + ": " + info.name);
  }
  by_base_.emplace(info.base, modules_list_.size());
  modules_list_.push_back(std::move(info));
}

void ModuleMap::add_symbol(std::uint64_t addr, std::string function) {
  LEAPS_CHECK_MSG(find_module(addr) != nullptr,
                  "symbol outside any module: " + function);
  symbols_[addr] = std::move(function);
}

const ModuleInfo* ModuleMap::find_module(std::uint64_t addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return nullptr;
  const ModuleInfo& m = modules_list_[std::prev(it)->second];
  return m.contains(addr) ? &m : nullptr;
}

Resolution ModuleMap::resolve(std::uint64_t addr) const {
  Resolution r;
  r.module = find_module(addr);
  if (r.module == nullptr) return r;
  auto it = symbols_.upper_bound(addr);
  if (it == symbols_.begin()) return r;
  --it;
  // The nearest preceding symbol must live in the same module to count.
  if (r.module->contains(it->first)) r.function = it->second;
  return r;
}

}  // namespace leaps::trace
