#include "trace/event.h"

#include <array>

namespace leaps::trace {

namespace {
constexpr std::array<std::string_view, kEventTypeCount> kNames = {
    "SysCallEnter", "SysCallExit",   "ProcessCreate", "ThreadCreate",
    "ImageLoad",    "FileRead",      "FileWrite",     "FileCreate",
    "RegistryRead", "RegistryWrite", "NetworkConnect", "NetworkSend",
    "NetworkRecv",  "MemAlloc",      "MemProtect",    "UiMessage",
};
}  // namespace

std::string_view event_type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  if (i >= kNames.size()) return "Unknown";
  return kNames[i];
}

std::optional<EventType> event_type_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<EventType>(i);
  }
  return std::nullopt;
}

}  // namespace leaps::trace
