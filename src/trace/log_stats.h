// Trace summary statistics — what an analyst looks at before training:
// event-type mix, module/frame distribution, thread activity, stack
// depths. Consumed by the leaps-stat tool and useful for sanity-checking
// any capture before feeding it to the pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "trace/partition.h"

namespace leaps::trace {

struct LogStats {
  std::string process_name;
  std::size_t events = 0;
  std::map<EventType, std::size_t> events_by_type;
  std::map<std::uint32_t, std::size_t> events_by_thread;
  /// Frames per system module across all stack walks.
  std::map<std::string, std::size_t> frames_by_module;
  std::size_t app_frames = 0;
  std::size_t system_frames = 0;
  double mean_stack_depth = 0.0;
  std::size_t max_stack_depth = 0;
  /// Distinct application-side addresses (≈ exercised functions).
  std::size_t distinct_app_addresses = 0;
  /// Lowest / highest application-side address seen.
  std::uint64_t app_address_min = 0;
  std::uint64_t app_address_max = 0;

  /// Human-readable multi-line report.
  std::string to_string() const;
};

LogStats compute_stats(const PartitionedLog& log);

}  // namespace leaps::trace
