// System-wide event captures and application slicing.
//
// A real tracing engine records *every* process on the machine into one
// log; LEAPS's front end then performs application slicing — "extract
// function and library information sliced for each process" (Section II-B).
// SystemRawLog models that capture: interleaved events tagged with process
// ids, per-process image records (each process maps its own image at the
// same base — separate address spaces), and the shared system modules.
// slice_process() recovers the familiar single-process RawLog.
//
// Text format (shares STACK/SYMBOL grammar with the single-process format):
//   # LEAPS system event trace v1
//   SYSMODULE <base> <size> <name>
//   SYMBOL <addr> <name>
//   PROCESSENTRY <pid> <name>
//   PROCMODULE <pid> <base> <size> <name>
//   SYSEVENT <pid> <seq> <tid> <Type>
//   STACK <addr>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "trace/raw_log.h"

namespace leaps::trace {

struct SystemRawLog {
  struct Entry {
    std::uint32_t pid = 0;
    RawEvent event;

    bool operator==(const Entry&) const = default;
  };

  /// pid → process (image) name.
  std::map<std::uint32_t, std::string> process_names;
  /// pid → that process's private image records.
  std::map<std::uint32_t, std::vector<RawModule>> process_modules;
  /// Shared libraries + kernel modules (one copy machine-wide).
  std::vector<RawModule> shared_modules;
  std::vector<RawSymbol> symbols;
  /// Capture order across all processes; seq numbers are global.
  std::vector<Entry> entries;

  bool operator==(const SystemRawLog&) const = default;
};

/// Process ids present in the capture, ascending.
std::vector<std::uint32_t> capture_pids(const SystemRawLog& capture);

/// Application slicing: the single-process raw log of `pid` (its image
/// records + the shared modules + its events, capture order preserved).
/// Throws std::invalid_argument for unknown pids.
RawLog slice_process(const SystemRawLog& capture, std::uint32_t pid);

void write_system_log(const SystemRawLog& capture, std::ostream& os);
std::string system_log_to_string(const SystemRawLog& capture);

/// Parses the textual format; throws ParseError (from trace/parser.h) with
/// line numbers on malformed input.
SystemRawLog parse_system_log(std::istream& is);
SystemRawLog parse_system_log_string(std::string_view text);

}  // namespace leaps::trace
