// Compact binary raw-log format (the textual format's wire twin).
//
// Real tracers write binary logs (ETW's ETL); the textual format in
// raw_log.h is for inspection. This encoding is ~6-10× smaller:
//
//   magic "LEAPSB01"
//   string   process name               (varint length + bytes)
//   varint   module count;  per module: varint base, varint size, string
//   varint   symbol count;  per symbol: varint addr, string
//   varint   event count;   per event:  varint seq, varint tid, u8 type,
//            varint frames; per frame:  zigzag-varint delta from the
//            previous frame's address (stack walks are address-local, so
//            deltas are short)
//
// All integers are LEB128 varints; frame addresses are delta-coded with
// zigzag signing.
//
// The readers are an untrusted boundary — the bytes may come from an
// attacker trying to blind the collector — so they return StatusOr
// instead of throwing: kCorruptInput for malformed bytes (message carries
// the byte offset), kResourceExhausted for inputs demanding implausible
// allocations. They never crash, hang, or silently partial-parse.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/raw_log.h"
#include "util/status.h"

namespace leaps::trace {

inline constexpr char kBinaryLogMagic[8] = {'L', 'E', 'A', 'P',
                                            'S', 'B', '0', '1'};

void write_raw_log_binary(const RawLog& log, std::ostream& os);
util::StatusOr<RawLog> read_raw_log_binary(std::istream& is);

/// True when the stream starts with the binary magic, without consuming
/// it. Seekable streams get the full 8-byte check (position restored);
/// non-seekable streams (pipes) peek a single byte — sufficient, because
/// no textual record ('#', PROCESS, MODULE, SYMBOL, EVENT, STACK, blank)
/// begins with 'L'.
bool is_binary_log(std::istream& is);

/// Reads a raw log in either format (binary detected by magic, otherwise
/// parsed as text via RawLogParser). Works on non-seekable streams such
/// as piped stdin.
util::StatusOr<RawLog> read_raw_log_any(std::istream& is);

}  // namespace leaps::trace
