// Compact binary raw-log format (the textual format's wire twin).
//
// Real tracers write binary logs (ETW's ETL); the textual format in
// raw_log.h is for inspection. This encoding is ~6-10× smaller:
//
//   magic "LEAPSB01"
//   string   process name               (varint length + bytes)
//   varint   module count;  per module: varint base, varint size, string
//   varint   symbol count;  per symbol: varint addr, string
//   varint   event count;   per event:  varint seq, varint tid, u8 type,
//            varint frames; per frame:  zigzag-varint delta from the
//            previous frame's address (stack walks are address-local, so
//            deltas are short)
//
// All integers are LEB128 varints; frame addresses are delta-coded with
// zigzag signing. read_raw_log_binary throws BinaryLogError with a byte
// offset on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/raw_log.h"

namespace leaps::trace {

inline constexpr char kBinaryLogMagic[8] = {'L', 'E', 'A', 'P',
                                            'S', 'B', '0', '1'};

class BinaryLogError : public std::runtime_error {
 public:
  BinaryLogError(std::size_t offset, const std::string& what)
      : std::runtime_error("binary log error at byte " +
                           std::to_string(offset) + ": " + what),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

void write_raw_log_binary(const RawLog& log, std::ostream& os);
RawLog read_raw_log_binary(std::istream& is);

/// True when the stream starts with the binary magic (peeked, stream
/// position restored) — lets tools accept either format transparently.
bool is_binary_log(std::istream& is);

/// Reads a raw log in either format (binary detected by magic, otherwise
/// parsed as text via RawLogParser). Throws BinaryLogError / ParseError.
RawLog read_raw_log_any(std::istream& is);

}  // namespace leaps::trace
