// Address-space module map and symbol table.
//
// The raw log begins with MODULE records (emitted on image load) and SYMBOL
// records for system modules (standing in for the symbol/PDB information a
// real tracer resolves offline). The application image is registered as a
// module but carries no symbols — LEAPS never needs application symbols; the
// application side of the pipeline works on raw addresses only.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace leaps::trace {

struct ModuleInfo {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  bool contains(std::uint64_t addr) const {
    return addr >= base && addr < base + size;
  }
};

/// Resolution result for one address.
struct Resolution {
  const ModuleInfo* module = nullptr;  // nullptr => unmapped region
  std::string function;                // empty => no symbol
};

class ModuleMap {
 public:
  /// Registers a module. Overlapping ranges are a caller bug and throw.
  void add_module(ModuleInfo info);

  /// Registers a symbol (function entry) at `addr`. The address must fall
  /// inside a registered module.
  void add_symbol(std::uint64_t addr, std::string function);

  /// Finds the module containing `addr`, or nullptr.
  const ModuleInfo* find_module(std::uint64_t addr) const;

  /// Resolves an address to (module, nearest-preceding symbol within the
  /// same module). Unmapped addresses resolve to {nullptr, ""}.
  Resolution resolve(std::uint64_t addr) const;

  const std::vector<ModuleInfo>& modules() const { return modules_list_; }
  std::size_t symbol_count() const { return symbols_.size(); }
  /// All registered symbols, ascending by address.
  const std::map<std::uint64_t, std::string>& symbols() const {
    return symbols_;
  }

 private:
  // base -> index into modules_list_; ordered for range lookup.
  std::map<std::uint64_t, std::size_t> by_base_;
  std::vector<ModuleInfo> modules_list_;
  std::map<std::uint64_t, std::string> symbols_;
};

}  // namespace leaps::trace
