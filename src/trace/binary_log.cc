#include "trace/binary_log.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/registry.h"
#include "trace/auditd_log.h"
#include "trace/parser.h"
#include "util/fault.h"

namespace leaps::trace {

namespace {

constexpr std::size_t kSaneCount = 100'000'000;  // corruption guard

// Attacker-supplied string lengths are honored at most one chunk at a
// time, so a truncated stream claiming a huge string fails after a 64 KiB
// allocation instead of committing ~100 MB up front.
constexpr std::size_t kStringChunk = 64 * 1024;

// Same principle for container counts: reserve at most this many elements
// up front and let push_back grow past it, so a corrupt count of 100M
// events costs a truncation error, not a multi-GB commit.
constexpr std::size_t kSaneReserve = 4096;

template <typename Vec>
void capped_reserve(Vec& v, std::uint64_t count) {
  v.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, kSaneReserve)));
}

/// Internal decode error; converted to Status at the API boundary.
class BinaryLogError : public std::runtime_error {
 public:
  BinaryLogError(std::size_t offset, const std::string& what)
      : std::runtime_error("binary log error at byte " +
                           std::to_string(offset) + ": " + what) {}
};

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void bytes(const void* data, std::size_t n) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
  }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      const auto byte = static_cast<unsigned char>((v & 0x7F) | 0x80);
      bytes(&byte, 1);
      v >>= 7;
    }
    const auto byte = static_cast<unsigned char>(v);
    bytes(&byte, 1);
  }
  void svarint(std::int64_t v) { varint(zigzag_encode(v)); }
  void string(const std::string& s) {
    varint(s.size());
    bytes(s.data(), s.size());
  }

 private:
  std::ostream& os_;
};

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::size_t offset() const { return offset_; }

  unsigned char byte() {
    char c = 0;
    if (!is_.get(c)) fail("unexpected end of stream");
    ++offset_;
    return static_cast<unsigned char>(c);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const unsigned char b = byte();
      // 64 bits fit in 10 LEB128 bytes; the 10th may carry only one bit.
      // Rejecting shift > 63 also bounds the loop against an endless run
      // of 0x80 continuation bytes.
      if (shift > 63 || (shift == 63 && (b & 0x7F) > 1)) {
        fail("varint overflow");
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  std::int64_t svarint() { return zigzag_decode(varint()); }
  std::uint64_t count(const char* what) {
    const std::uint64_t v = varint();
    if (v > kSaneCount) fail(std::string("implausible count for ") + what);
    return v;
  }
  std::string string() {
    const std::uint64_t n = count("string");
    std::string s;
    std::uint64_t remaining = n;
    while (remaining > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, kStringChunk));
      const std::size_t old = s.size();
      s.resize(old + take);
      if (!is_.read(s.data() + old, static_cast<std::streamsize>(take))) {
        fail("truncated string");
      }
      offset_ += take;
      remaining -= take;
    }
    return s;
  }
  [[noreturn]] void fail(const std::string& what) {
    throw BinaryLogError(offset_, what);
  }

 private:
  std::istream& is_;
  std::size_t offset_ = 0;
};

// Ingest counters shared with the text parser (the registry dedups by
// name). Incremented in bulk per decoded log, never per event, so the
// decode loop stays free of shared-cache-line traffic.
obs::Counter& ingest_events_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_events_total", "raw events decoded from ingested logs");
  return c;
}

obs::Counter& ingest_bytes_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_bytes_total", "bytes consumed decoding ingested logs");
  return c;
}

obs::Counter& ingest_corrupt_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_corrupt_total", "ingest attempts rejected as corrupt");
  return c;
}

RawLog read_binary_impl(std::istream& is) {
  Reader r(is);
  char magic[sizeof(kBinaryLogMagic)];
  for (char& c : magic) c = static_cast<char>(r.byte());
  if (!std::equal(std::begin(magic), std::end(magic),
                  std::begin(kBinaryLogMagic))) {
    r.fail("bad magic");
  }
  RawLog log;
  log.process_name = r.string();
  const std::uint64_t modules = r.count("modules");
  capped_reserve(log.modules, modules);
  for (std::uint64_t i = 0; i < modules; ++i) {
    RawModule m;
    m.base = r.varint();
    m.size = r.varint();
    m.name = r.string();
    log.modules.push_back(std::move(m));
  }
  const std::uint64_t symbols = r.count("symbols");
  capped_reserve(log.symbols, symbols);
  for (std::uint64_t i = 0; i < symbols; ++i) {
    RawSymbol s;
    s.address = r.varint();
    s.function = r.string();
    log.symbols.push_back(std::move(s));
  }
  const std::uint64_t events = r.count("events");
  capped_reserve(log.events, events);
  for (std::uint64_t i = 0; i < events; ++i) {
    RawEvent e;
    e.seq = r.varint();
    e.tid = static_cast<std::uint32_t>(r.varint());
    const unsigned char type = r.byte();
    if (type >= kEventTypeCount) r.fail("unknown event type");
    e.type = static_cast<EventType>(type);
    const std::uint64_t frames = r.count("frames");
    capped_reserve(e.stack, frames);
    std::uint64_t prev = 0;
    for (std::uint64_t f = 0; f < frames; ++f) {
      prev += static_cast<std::uint64_t>(r.svarint());
      e.stack.push_back(prev);
    }
    log.events.push_back(std::move(e));
  }
  ingest_events_counter().inc(log.events.size());
  ingest_bytes_counter().inc(r.offset());
  return log;
}

}  // namespace

void write_raw_log_binary(const RawLog& log, std::ostream& os) {
  Writer w(os);
  w.bytes(kBinaryLogMagic, sizeof(kBinaryLogMagic));
  w.string(log.process_name);
  w.varint(log.modules.size());
  for (const RawModule& m : log.modules) {
    w.varint(m.base);
    w.varint(m.size);
    w.string(m.name);
  }
  w.varint(log.symbols.size());
  for (const RawSymbol& s : log.symbols) {
    w.varint(s.address);
    w.string(s.function);
  }
  w.varint(log.events.size());
  for (const RawEvent& e : log.events) {
    w.varint(e.seq);
    w.varint(e.tid);
    const auto type = static_cast<unsigned char>(e.type);
    w.bytes(&type, 1);
    w.varint(e.stack.size());
    std::uint64_t prev = 0;
    for (const std::uint64_t addr : e.stack) {
      w.svarint(static_cast<std::int64_t>(addr - prev));
      prev = addr;
    }
  }
}

util::StatusOr<RawLog> read_raw_log_binary(std::istream& is) {
  LEAPS_FAULT_POINT_STATUS("trace.ingest.read");
  try {
    return read_binary_impl(is);
  } catch (const BinaryLogError& e) {
    ingest_corrupt_counter().inc(1);
    return util::corrupt_input(e.what());
  } catch (const std::bad_alloc&) {
    return util::resource_exhausted("binary log: allocation failed");
  } catch (const std::length_error&) {
    return util::resource_exhausted("binary log: implausible allocation");
  }
}

bool is_binary_log(std::istream& is) {
  const std::streampos pos = is.tellg();
  if (pos == std::streampos(-1)) {
    // Non-seekable stream (pipe): a single-byte peek discriminates the
    // formats without consuming anything.
    is.clear();
    return is.peek() ==
           std::char_traits<char>::to_int_type(kBinaryLogMagic[0]);
  }
  char magic[sizeof(kBinaryLogMagic)];
  is.read(magic, sizeof(magic));
  const bool ok = is.gcount() == sizeof(magic) &&
                  std::equal(std::begin(magic), std::end(magic),
                             std::begin(kBinaryLogMagic));
  is.clear();
  is.seekg(pos);
  return ok;
}

namespace {

// The auditd dialect is the only format whose records start with 't'
// ("type="): the text grammar's records start with '#', P, M, S or E and
// the binary magic starts with 'L', so — like is_binary_log — a one-byte
// peek suffices on pipes and a short prefix read on seekable streams.
bool is_auditd_log(std::istream& is) {
  const std::streampos pos = is.tellg();
  if (pos == std::streampos(-1)) {
    is.clear();
    return is.peek() == std::char_traits<char>::to_int_type('t');
  }
  constexpr char kPrefix[] = {'t', 'y', 'p', 'e', '='};
  char head[sizeof(kPrefix)];
  is.read(head, sizeof(head));
  const bool ok = is.gcount() == sizeof(head) &&
                  std::equal(std::begin(head), std::end(head),
                             std::begin(kPrefix));
  is.clear();
  is.seekg(pos);
  return ok;
}

}  // namespace

util::StatusOr<RawLog> read_raw_log_any(std::istream& is) {
  if (is_binary_log(is)) return read_raw_log_binary(is);
  if (is_auditd_log(is)) return read_raw_log_auditd(is);
  // Text: run the grammar parser, then project back to raw records.
  LEAPS_FAULT_POINT_STATUS("trace.ingest.read");
  util::StatusOr<ParsedTrace> parsed = RawLogParser().parse(is);
  if (!parsed.ok()) return parsed.status();
  RawLog out;
  out.process_name = parsed->log.process_name;
  for (const ModuleInfo& m : parsed->modules.modules()) {
    out.modules.push_back({m.base, m.size, m.name});
  }
  for (const auto& [addr, function] : parsed->modules.symbols()) {
    out.symbols.push_back({addr, function});
  }
  for (const Event& e : parsed->log.events) {
    RawEvent re;
    re.seq = e.seq;
    re.tid = e.tid;
    re.type = e.type;
    re.stack.reserve(e.stack.size());
    for (const StackFrame& f : e.stack) re.stack.push_back(f.address);
    out.events.push_back(std::move(re));
  }
  return out;
}

}  // namespace leaps::trace
