// Stack Partition Module (Section II-B / III-A).
//
// Splits every event's stack walk into:
//  * the application stack trace — frames inside the application image plus
//    frames in unmapped memory (runtime-injected payload pages have no image
//    record, so they land here, which is exactly what makes them visible to
//    CFG inference); stored outermost-first, the orientation Algorithm 1
//    expects ("the application stack trace starts from Addr_1 to Addr_5"),
//  * the system stack trace — frames in shared libraries and the kernel,
//    which feed the {Event_Type, Lib, Func} features.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.h"
#include "trace/module_map.h"

namespace leaps::trace {

struct PartitionedEvent {
  std::uint64_t seq = 0;
  std::uint32_t tid = 0;
  EventType type = EventType::kSysCallEnter;
  /// Application-side return addresses, outermost (entry point) first.
  std::vector<std::uint64_t> app_stack;
  /// System-side frames (shared libraries + kernel), innermost first.
  std::vector<StackFrame> system_stack;
};

struct PartitionedLog {
  std::string process_name;
  std::vector<PartitionedEvent> events;
};

class StackPartitioner {
 public:
  /// `app_module` is the name of the application image (typically the
  /// process name); every other mapped module is treated as a system module.
  explicit StackPartitioner(std::string app_module)
      : app_module_(std::move(app_module)) {}

  PartitionedEvent partition(const Event& event) const;
  PartitionedLog partition(const CorrelatedLog& log) const;

 private:
  std::string app_module_;
};

}  // namespace leaps::trace
