#include "trace/auditd_log.h"

#include <cstdio>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/fault.h"
#include "util/strings.h"

namespace leaps::trace {

namespace {

using util::parse_hex_u64;
using util::split;
using util::split_ws;
using util::starts_with;
using util::trim;

// Deterministic fake clock for the writer: auditd stamps records with
// wall time, the simulator has none, so records tick one millisecond per
// serial from a fixed epoch. The parser never reads the timestamp.
constexpr std::uint64_t kEpoch = 1700000000;

/// Internal parse error; converted to kCorruptInput at the API boundary.
/// Carries both the 1-based line number and the byte offset of the start
/// of the offending line (the binary dialect's offset discipline).
class AuditdError : public std::runtime_error {
 public:
  AuditdError(std::size_t line, std::size_t byte, const std::string& what)
      : std::runtime_error("auditd log parse error at line " +
                           std::to_string(line) + " (byte " +
                           std::to_string(byte) + "): " + what) {}
};

obs::Counter& ingest_events_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_events_total", "raw events decoded from ingested logs");
  return c;
}

obs::Counter& ingest_bytes_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_bytes_total", "bytes consumed decoding ingested logs");
  return c;
}

obs::Counter& ingest_corrupt_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_ingest_corrupt_total", "ingest attempts rejected as corrupt");
  return c;
}

void append_record_prefix(std::ostream& os, const char* kind,
                          std::uint64_t& serial) {
  const std::uint64_t s = serial++;
  char ts[64];
  std::snprintf(ts, sizeof ts, "%llu.%03llu",
                static_cast<unsigned long long>(kEpoch + s / 1000),
                static_cast<unsigned long long>(s % 1000));
  os << "type=" << kind << " msg=audit(" << ts << ":" << s << "): ";
}

/// Line-by-line state machine over the auditd record grammar.
class AuditdParserState {
 public:
  RawLog finish() && {
    flush_event();
    return std::move(log_);
  }

  void consume(std::string_view line, std::size_t lineno, std::size_t byte) {
    lineno_ = lineno;
    byte_ = byte;
    line = trim(line);
    if (line.empty() || line.front() == '#') return;
    const auto tokens = split_ws(line);
    require(tokens.size() >= 2, "truncated record");
    require(starts_with(tokens[0], "type="), "record without type=");
    const std::string_view kind = tokens[0].substr(5);
    const std::string_view msg = tokens[1];
    require(starts_with(msg, "msg=audit(") && msg.size() >= 12 &&
                msg.substr(msg.size() - 2) == "):",
            "malformed msg=audit(ts:serial) field");

    // The remaining tokens are k=v fields; values may be double-quoted.
    std::vector<std::pair<std::string_view, std::string_view>> fields;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      require(eq != std::string_view::npos && eq > 0,
              "field without key=value shape");
      std::string_view value = tokens[i].substr(eq + 1);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      } else {
        require(value.find('"') == std::string_view::npos,
                "unterminated quoted value");
      }
      fields.emplace_back(tokens[i].substr(0, eq), value);
    }

    if (kind == "DAEMON_START") {
      log_.process_name = std::string(field(fields, "comm"));
    } else if (kind == "MMAP") {
      RawModule m;
      m.base = parse_addr(field(fields, "addr"));
      m.size = parse_addr(field(fields, "len"));
      m.name = std::string(field(fields, "name"));
      require(m.size > 0, "MMAP with zero len");
      log_.modules.push_back(std::move(m));
    } else if (kind == "SYM") {
      RawSymbol s;
      s.address = parse_addr(field(fields, "addr"));
      s.function = std::string(field(fields, "name"));
      log_.symbols.push_back(std::move(s));
    } else if (kind == "SYSCALL") {
      flush_event();
      current_.emplace();
      current_->seq = parse_dec(field(fields, "seq"));
      current_->tid = static_cast<std::uint32_t>(
          parse_dec(field(fields, "tid")));
      // The audit filter key carries the exact event-type name; the
      // syscall number is the fallback for foreign captures without keys.
      const std::string_view key = field(fields, "key", /*required=*/false);
      if (!key.empty()) {
        const auto type = event_type_from_name(key);
        require(type.has_value(), "unknown audit key");
        current_->type = *type;
      } else {
        const auto type = auditd_event_type(static_cast<int>(
            parse_dec(field(fields, "syscall"))));
        require(type.has_value(), "unmapped syscall number");
        current_->type = *type;
      }
    } else if (kind == "BACKTRACE") {
      require(current_.has_value(), "BACKTRACE before any SYSCALL");
      const std::string_view frames = field(fields, "frames");
      if (!frames.empty()) {
        for (const std::string_view f : split(frames, ',')) {
          current_->stack.push_back(parse_addr(f));
        }
      }
    } else {
      fail("unknown record type '" + std::string(kind) + "'");
    }
  }

 private:
  void flush_event() {
    if (current_.has_value()) {
      log_.events.push_back(std::move(*current_));
      current_.reset();
    }
  }

  std::string_view field(
      const std::vector<std::pair<std::string_view, std::string_view>>& fs,
      std::string_view key, bool required = true) {
    for (const auto& [k, v] : fs) {
      if (k == key) return v;
    }
    if (required) fail("missing field '" + std::string(key) + "'");
    return {};
  }

  std::uint64_t parse_addr(std::string_view s) {
    std::uint64_t v = 0;
    if (!parse_hex_u64(s, v)) fail("bad hex value '" + std::string(s) + "'");
    return v;
  }

  std::uint64_t parse_dec(std::string_view s) {
    std::uint64_t v = 0;
    if (s.empty()) fail("empty decimal");
    for (char c : s) {
      if (c < '0' || c > '9') fail("bad decimal '" + std::string(s) + "'");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  void require(bool cond, const std::string& what) {
    if (!cond) fail(what);
  }

  [[noreturn]] void fail(const std::string& what) {
    throw AuditdError(lineno_, byte_, what);
  }

  RawLog log_;
  std::optional<RawEvent> current_;
  std::size_t lineno_ = 0;
  std::size_t byte_ = 0;
};

}  // namespace

int auditd_syscall_for(EventType t) {
  // Nearest x86-64 Linux analogue per event class (DESIGN.md §15 has the
  // full table). Numbers are distinct, so the mapping inverts exactly.
  switch (t) {
    case EventType::kSysCallEnter:
      return 39;  // getpid
    case EventType::kSysCallExit:
      return 102;  // getuid
    case EventType::kProcessCreate:
      return 59;  // execve
    case EventType::kThreadCreate:
      return 56;  // clone
    case EventType::kImageLoad:
      return 9;  // mmap (PROT_EXEC image mapping)
    case EventType::kFileRead:
      return 0;  // read
    case EventType::kFileWrite:
      return 1;  // write
    case EventType::kFileCreate:
      return 2;  // open
    case EventType::kRegistryRead:
      return 217;  // getdents64 (config-store read analogue)
    case EventType::kRegistryWrite:
      return 82;  // rename (config-store update analogue)
    case EventType::kNetworkConnect:
      return 42;  // connect
    case EventType::kNetworkSend:
      return 44;  // sendto
    case EventType::kNetworkRecv:
      return 45;  // recvfrom
    case EventType::kMemAlloc:
      return 12;  // brk
    case EventType::kMemProtect:
      return 10;  // mprotect
    case EventType::kUiMessage:
      return 7;  // poll (event-loop pump analogue)
    case EventType::kCount:
      break;
  }
  return -1;
}

std::optional<EventType> auditd_event_type(int syscall) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto t = static_cast<EventType>(i);
    if (auditd_syscall_for(t) == syscall) return t;
  }
  return std::nullopt;
}

void write_raw_log_auditd(const RawLog& log, std::ostream& os) {
  std::uint64_t serial = 1;
  append_record_prefix(os, "DAEMON_START", serial);
  os << "op=start comm=\"" << log.process_name << "\" ver=\"leaps\"\n";
  for (const RawModule& m : log.modules) {
    append_record_prefix(os, "MMAP", serial);
    os << "addr=" << util::hex_addr(m.base) << " len=" << util::hex_addr(m.size)
       << " name=\"" << m.name << "\"\n";
  }
  for (const RawSymbol& s : log.symbols) {
    append_record_prefix(os, "SYM", serial);
    os << "addr=" << util::hex_addr(s.address) << " name=\"" << s.function
       << "\"\n";
  }
  for (const RawEvent& e : log.events) {
    append_record_prefix(os, "SYSCALL", serial);
    os << "seq=" << e.seq << " tid=" << e.tid
       << " syscall=" << auditd_syscall_for(e.type) << " key=\""
       << event_type_name(e.type) << "\"\n";
    if (!e.stack.empty()) {
      append_record_prefix(os, "BACKTRACE", serial);
      os << "frames=\"";
      for (std::size_t f = 0; f < e.stack.size(); ++f) {
        if (f > 0) os << ',';
        os << util::hex_addr(e.stack[f]);
      }
      os << "\"\n";
    }
  }
}

std::string raw_log_to_auditd_string(const RawLog& log) {
  std::ostringstream os;
  write_raw_log_auditd(log, os);
  return os.str();
}

util::StatusOr<RawLog> read_raw_log_auditd(std::istream& is) {
  LEAPS_FAULT_POINT_STATUS("trace.ingest.read");
  std::size_t bytes = 0;
  try {
    AuditdParserState state;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      state.consume(line, lineno, bytes);
      bytes += line.size() + 1;  // + the newline getline consumed
    }
    RawLog log = std::move(state).finish();
    ingest_events_counter().inc(log.events.size());
    ingest_bytes_counter().inc(bytes);
    return log;
  } catch (const AuditdError& e) {
    ingest_corrupt_counter().inc(1);
    return util::corrupt_input(e.what());
  } catch (const std::bad_alloc&) {
    return util::resource_exhausted("auditd log parse: allocation failed");
  } catch (const std::length_error&) {
    return util::resource_exhausted("auditd log parse: implausible allocation");
  }
}

}  // namespace leaps::trace
