// The raw event-trace log format (the ETL-file stand-in).
//
// A raw log is what the simulated tracing engine writes: image-load records,
// system symbols, and events whose stack walks are raw addresses only. The
// textual format is deliberately line-oriented so that the Raw Log Parser has
// real parsing work to do, mirroring LEAPS's front end:
//
//   # LEAPS raw event trace v1
//   PROCESS putty.exe
//   MODULE 0x00007ff810000000 0x0000000000040000 kernel32.dll
//   SYMBOL 0x00007ff810001200 ReadFile
//   EVENT 107 3 SysCallEnter
//   STACK 0xfffff80000012340
//   STACK 0x00007ff800001200
//   ...
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.h"

namespace leaps::trace {

/// One traced event before symbolication: raw return addresses only,
/// innermost first.
struct RawEvent {
  std::uint64_t seq = 0;
  std::uint32_t tid = 0;
  EventType type = EventType::kSysCallEnter;
  std::vector<std::uint64_t> stack;

  bool operator==(const RawEvent&) const = default;
};

struct RawSymbol {
  std::uint64_t address = 0;
  std::string function;

  bool operator==(const RawSymbol&) const = default;
};

struct RawModule {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  std::string name;

  bool operator==(const RawModule&) const = default;
};

/// A complete raw trace for one process.
struct RawLog {
  std::string process_name;
  std::vector<RawModule> modules;
  std::vector<RawSymbol> symbols;
  std::vector<RawEvent> events;

  bool operator==(const RawLog&) const = default;
};

/// Serializes the log in the textual format above.
void write_raw_log(const RawLog& log, std::ostream& os);

/// Convenience: serialize to a string.
std::string raw_log_to_string(const RawLog& log);

}  // namespace leaps::trace
