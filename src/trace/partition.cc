#include "trace/partition.h"

#include <algorithm>

namespace leaps::trace {

PartitionedEvent StackPartitioner::partition(const Event& event) const {
  PartitionedEvent out;
  out.seq = event.seq;
  out.tid = event.tid;
  out.type = event.type;
  for (const StackFrame& f : event.stack) {
    const bool is_app = f.module.empty() || f.module == app_module_;
    if (is_app) {
      out.app_stack.push_back(f.address);
    } else {
      out.system_stack.push_back(f);
    }
  }
  // Frames arrive innermost-first; Algorithm 1 consumes the application walk
  // outermost-first.
  std::reverse(out.app_stack.begin(), out.app_stack.end());
  return out;
}

PartitionedLog StackPartitioner::partition(const CorrelatedLog& log) const {
  PartitionedLog out;
  out.process_name = log.process_name;
  out.events.reserve(log.events.size());
  for (const Event& e : log.events) out.events.push_back(partition(e));
  return out;
}

}  // namespace leaps::trace
