// System-event model: the in-memory representation of a stack-event
// correlated log (the output of the Raw Log Parser, Section II-B of the
// paper).
//
// An Event is one logged system event plus its stack walk. Frames are stored
// innermost-first (the kernel-side leaf is frame 0), matching how real
// stack-walking tracers such as ETW emit them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace leaps::trace {

/// The system-event classes the simulated logger can capture. Mirrors the
/// stack-walk-enabled ETW event classes the paper lists (system call,
/// process/thread creation, image load, file operations, registry tracing)
/// plus network and memory events used by the payload models.
enum class EventType : std::uint8_t {
  kSysCallEnter = 0,
  kSysCallExit,
  kProcessCreate,
  kThreadCreate,
  kImageLoad,
  kFileRead,
  kFileWrite,
  kFileCreate,
  kRegistryRead,
  kRegistryWrite,
  kNetworkConnect,
  kNetworkSend,
  kNetworkRecv,
  kMemAlloc,
  kMemProtect,
  kUiMessage,
  kCount,  // sentinel
};

constexpr std::size_t kEventTypeCount = static_cast<std::size_t>(EventType::kCount);

/// Stable integer id used as the Event_Type feature (paper: "Event_Type is
/// well defined in the system, and thus can be naturally mapped to the
/// integer space").
constexpr int event_type_id(EventType t) { return static_cast<int>(t); }

std::string_view event_type_name(EventType t);

/// Parses the textual name back to the enum; nullopt for unknown names.
std::optional<EventType> event_type_from_name(std::string_view name);

/// One stack-walk frame. `module` and `function` are resolved by the parser
/// from the log's MODULE/SYMBOL records; they stay empty for frames in
/// unmapped memory (e.g. injected payload pages) and for modules without
/// symbols (the application image — its symbols are "not available", exactly
/// the setting the paper assumes).
struct StackFrame {
  std::uint64_t address = 0;
  std::string module;    // empty => unmapped region
  std::string function;  // empty => no symbol

  bool operator==(const StackFrame&) const = default;
};

/// One correlated system event.
struct Event {
  std::uint64_t seq = 0;   // event number within the log ("@107" in Fig. 2)
  std::uint32_t tid = 0;   // simulated thread id
  EventType type = EventType::kSysCallEnter;
  std::vector<StackFrame> stack;  // innermost first

  bool operator==(const Event&) const = default;
};

/// A parsed, stack-event correlated log for one process.
struct CorrelatedLog {
  std::string process_name;
  std::vector<Event> events;
};

}  // namespace leaps::trace
