#include "trace/log_stats.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace leaps::trace {

LogStats compute_stats(const PartitionedLog& log) {
  LogStats s;
  s.process_name = log.process_name;
  s.events = log.events.size();
  std::set<std::uint64_t> app_addresses;
  std::size_t depth_total = 0;
  for (const PartitionedEvent& e : log.events) {
    s.events_by_type[e.type] += 1;
    s.events_by_thread[e.tid] += 1;
    s.app_frames += e.app_stack.size();
    s.system_frames += e.system_stack.size();
    const std::size_t depth = e.app_stack.size() + e.system_stack.size();
    depth_total += depth;
    s.max_stack_depth = std::max(s.max_stack_depth, depth);
    for (const StackFrame& f : e.system_stack) {
      s.frames_by_module[f.module] += 1;
    }
    for (const std::uint64_t a : e.app_stack) app_addresses.insert(a);
  }
  s.distinct_app_addresses = app_addresses.size();
  if (!app_addresses.empty()) {
    s.app_address_min = *app_addresses.begin();
    s.app_address_max = *app_addresses.rbegin();
  }
  if (s.events > 0) {
    s.mean_stack_depth =
        static_cast<double>(depth_total) / static_cast<double>(s.events);
  }
  return s;
}

std::string LogStats::to_string() const {
  std::ostringstream os;
  os << "process " << process_name << ": " << events << " events, mean "
     << "stack depth " << util::fixed(mean_stack_depth, 1) << " (max "
     << max_stack_depth << ")\n";
  os << "threads:";
  for (const auto& [tid, count] : events_by_thread) {
    os << "  tid " << tid << " x" << count;
  }
  os << "\napplication side: " << app_frames << " frames over "
     << distinct_app_addresses << " distinct addresses ["
     << util::hex_addr(app_address_min) << ", "
     << util::hex_addr(app_address_max) << "]\n";
  os << "event types:\n";
  for (const auto& [type, count] : events_by_type) {
    os << "  " << event_type_name(type) << ": " << count << " ("
       << util::fixed(100.0 * static_cast<double>(count) /
                          static_cast<double>(std::max<std::size_t>(1,
                                                                    events)),
                      1)
       << "%)\n";
  }
  // Modules, most-hit first.
  std::vector<std::pair<std::size_t, std::string>> mods;
  for (const auto& [name, count] : frames_by_module) {
    mods.emplace_back(count, name);
  }
  std::sort(mods.rbegin(), mods.rend());
  os << "system frames by module:\n";
  for (const auto& [count, name] : mods) {
    os << "  " << name << ": " << count << '\n';
  }
  return os.str();
}

}  // namespace leaps::trace
