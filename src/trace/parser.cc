#include "trace/parser.h"

#include <istream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/registry.h"
#include "util/strings.h"

namespace leaps::trace {

namespace {

using util::parse_hex_u64;
using util::split_ws;
using util::starts_with;
using util::trim;

/// Line-by-line state machine over the raw-log grammar.
class ParserState {
 public:
  ParsedTrace finish() && {
    flush_event();
    return std::move(result_);
  }

  void consume(std::string_view line, std::size_t lineno) {
    lineno_ = lineno;
    line = trim(line);
    if (line.empty() || line.front() == '#') return;
    const auto fields = split_ws(line);
    const std::string_view kind = fields.front();
    if (kind == "PROCESS") {
      require(fields.size() == 2, "PROCESS expects 1 field");
      result_.log.process_name = std::string(fields[1]);
    } else if (kind == "MODULE") {
      require(fields.size() == 4, "MODULE expects 3 fields");
      ModuleInfo m;
      m.base = parse_addr(fields[1]);
      m.size = parse_addr(fields[2]);
      m.name = std::string(fields[3]);
      require(m.size > 0, "MODULE with zero size");
      try {
        result_.modules.add_module(std::move(m));
      } catch (const std::logic_error& e) {
        fail(e.what());  // overlapping module ranges
      }
    } else if (kind == "SYMBOL") {
      require(fields.size() == 3, "SYMBOL expects 2 fields");
      const std::uint64_t addr = parse_addr(fields[1]);
      require(result_.modules.find_module(addr) != nullptr,
              "SYMBOL outside any MODULE");
      result_.modules.add_symbol(addr, std::string(fields[2]));
    } else if (kind == "EVENT") {
      require(fields.size() == 4, "EVENT expects 3 fields");
      flush_event();
      current_.emplace();
      current_->seq = parse_dec(fields[1]);
      current_->tid = static_cast<std::uint32_t>(parse_dec(fields[2]));
      const auto type = event_type_from_name(fields[3]);
      require(type.has_value(), "unknown event type");
      current_->type = *type;
    } else if (kind == "STACK") {
      require(fields.size() == 2, "STACK expects 1 field");
      require(current_.has_value(), "STACK before any EVENT");
      StackFrame frame;
      frame.address = parse_addr(fields[1]);
      const Resolution r = result_.modules.resolve(frame.address);
      if (r.module != nullptr) frame.module = r.module->name;
      frame.function = r.function;
      current_->stack.push_back(std::move(frame));
    } else {
      fail("unknown record kind '" + std::string(kind) + "'");
    }
  }

 private:
  void flush_event() {
    if (current_.has_value()) {
      result_.log.events.push_back(std::move(*current_));
      current_.reset();
    }
  }

  std::uint64_t parse_addr(std::string_view s) {
    std::uint64_t v = 0;
    if (!parse_hex_u64(s, v)) fail("bad hex address '" + std::string(s) + "'");
    return v;
  }

  std::uint64_t parse_dec(std::string_view s) {
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') fail("bad decimal '" + std::string(s) + "'");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  void require(bool cond, const std::string& what) {
    if (!cond) fail(what);
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(lineno_, what);
  }

  ParsedTrace result_;
  std::optional<Event> current_;
  std::size_t lineno_ = 0;
};

}  // namespace

util::StatusOr<ParsedTrace> RawLogParser::parse(std::istream& is) const {
  // Same names as the binary decoder's counters (the registry dedups), so
  // both ingest formats land on one scrape surface. Incremented in bulk
  // per parsed log, never per line.
  static obs::Counter& ingest_events = obs::MetricRegistry::global().counter(
      "leaps_ingest_events_total", "raw events decoded from ingested logs");
  static obs::Counter& ingest_bytes = obs::MetricRegistry::global().counter(
      "leaps_ingest_bytes_total", "bytes consumed decoding ingested logs");
  static obs::Counter& ingest_corrupt = obs::MetricRegistry::global().counter(
      "leaps_ingest_corrupt_total", "ingest attempts rejected as corrupt");
  std::size_t bytes = 0;
  try {
    ParserState state;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      bytes += line.size() + 1;  // + the newline getline consumed
      state.consume(line, lineno);
    }
    ParsedTrace parsed = std::move(state).finish();
    ingest_events.inc(parsed.log.events.size());
    ingest_bytes.inc(bytes);
    return parsed;
  } catch (const ParseError& e) {
    ingest_corrupt.inc(1);
    return util::corrupt_input(e.what());
  } catch (const std::bad_alloc&) {
    return util::resource_exhausted("raw log parse: allocation failed");
  }
}

util::StatusOr<ParsedTrace> RawLogParser::parse_string(
    std::string_view text) const {
  std::istringstream is{std::string(text)};
  return parse(is);
}

ParsedTrace RawLogParser::parse_raw(const RawLog& raw) const {
  ParsedTrace out;
  out.log.process_name = raw.process_name;
  for (const RawModule& m : raw.modules) {
    out.modules.add_module({m.name, m.base, m.size});
  }
  for (const RawSymbol& s : raw.symbols) {
    out.modules.add_symbol(s.address, s.function);
  }
  out.log.events.reserve(raw.events.size());
  for (const RawEvent& re : raw.events) {
    Event e;
    e.seq = re.seq;
    e.tid = re.tid;
    e.type = re.type;
    e.stack.reserve(re.stack.size());
    for (std::uint64_t addr : re.stack) {
      StackFrame frame;
      frame.address = addr;
      const Resolution r = out.modules.resolve(addr);
      if (r.module != nullptr) frame.module = r.module->name;
      frame.function = r.function;
      e.stack.push_back(std::move(frame));
    }
    out.log.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace leaps::trace
