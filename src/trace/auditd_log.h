// Linux auditd / DARPA Transparent Computing–style provenance dialect.
//
// Real deployments rarely speak the simulator's ETW-flavored grammar;
// Linux fleets emit auditd record streams (arxiv 1610.06936 traces ship
// in exactly this shape). This dialect renders a raw trace as auditd
// records — `type=KIND msg=audit(ts:serial): k=v ...` lines — and parses
// them back behind the same hardened StatusOr boundary as the text and
// binary formats, so every tool ingests auditd captures unchanged via
// read_raw_log_any()/tools/ingest.h:
//
//   type=DAEMON_START msg=audit(1700000000.000:1): op=start comm="putty.exe"
//   type=MMAP msg=audit(1700000000.000:2): addr=0x140000000 len=0x24000
//     name="putty.exe"
//   type=SYM msg=audit(1700000000.000:3): addr=0x7ff810001200 name="ReadFile"
//   type=SYSCALL msg=audit(1700000000.107:9): seq=107 tid=3 syscall=0
//     key="FileRead"
//   type=BACKTRACE msg=audit(1700000000.107:10): frames="0xfffff8...,0x7ff..."
//
// Event classes travel twice: as a syscall number (the canonical auditd
// field, mapped through the table below) and as an audit filter key
// carrying the LEAPS event-type name. The key wins when present — the
// syscall table is many-to-one (read(2) is kFileRead whether the key
// survived or not), the key makes the round trip exact.
//
// The reader is an untrusted boundary: malformed records yield
// kCorruptInput (the message carries the 1-based line number and the byte
// offset of the offending record, matching the binary dialect's
// discipline), implausible allocations yield kResourceExhausted; it never
// throws, crashes, or silently partial-parses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "trace/raw_log.h"
#include "util/status.h"

namespace leaps::trace {

/// Representative Linux syscall number for an event class (the writer's
/// side of the mapping table; see DESIGN.md §15 for the full table).
int auditd_syscall_for(EventType t);

/// Event class for a syscall number; nullopt for unmapped numbers.
std::optional<EventType> auditd_event_type(int syscall);

/// Serializes the log as an auditd record stream.
void write_raw_log_auditd(const RawLog& log, std::ostream& os);

std::string raw_log_to_auditd_string(const RawLog& log);

/// Parses an auditd record stream; kCorruptInput (with line number and
/// byte offset) on malformed input.
util::StatusOr<RawLog> read_raw_log_auditd(std::istream& is);

}  // namespace leaps::trace
