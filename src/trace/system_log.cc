#include "trace/system_log.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "trace/parser.h"
#include "util/strings.h"

namespace leaps::trace {

std::vector<std::uint32_t> capture_pids(const SystemRawLog& capture) {
  std::vector<std::uint32_t> out;
  out.reserve(capture.process_names.size());
  for (const auto& [pid, name] : capture.process_names) out.push_back(pid);
  return out;
}

RawLog slice_process(const SystemRawLog& capture, std::uint32_t pid) {
  const auto name_it = capture.process_names.find(pid);
  if (name_it == capture.process_names.end()) {
    throw std::invalid_argument("slice_process: unknown pid " +
                                std::to_string(pid));
  }
  RawLog out;
  out.process_name = name_it->second;
  const auto modules_it = capture.process_modules.find(pid);
  if (modules_it != capture.process_modules.end()) {
    out.modules = modules_it->second;
  }
  out.modules.insert(out.modules.end(), capture.shared_modules.begin(),
                     capture.shared_modules.end());
  out.symbols = capture.symbols;
  for (const SystemRawLog::Entry& e : capture.entries) {
    if (e.pid == pid) out.events.push_back(e.event);
  }
  return out;
}

void write_system_log(const SystemRawLog& capture, std::ostream& os) {
  os << "# LEAPS system event trace v1\n";
  for (const RawModule& m : capture.shared_modules) {
    os << "SYSMODULE " << util::hex_addr(m.base) << ' '
       << util::hex_addr(m.size) << ' ' << m.name << '\n';
  }
  for (const RawSymbol& s : capture.symbols) {
    os << "SYMBOL " << util::hex_addr(s.address) << ' ' << s.function
       << '\n';
  }
  for (const auto& [pid, name] : capture.process_names) {
    os << "PROCESSENTRY " << pid << ' ' << name << '\n';
    const auto it = capture.process_modules.find(pid);
    if (it == capture.process_modules.end()) continue;
    for (const RawModule& m : it->second) {
      os << "PROCMODULE " << pid << ' ' << util::hex_addr(m.base) << ' '
         << util::hex_addr(m.size) << ' ' << m.name << '\n';
    }
  }
  for (const SystemRawLog::Entry& e : capture.entries) {
    os << "SYSEVENT " << e.pid << ' ' << e.event.seq << ' ' << e.event.tid
       << ' ' << event_type_name(e.event.type) << '\n';
    for (const std::uint64_t addr : e.event.stack) {
      os << "STACK " << util::hex_addr(addr) << '\n';
    }
  }
}

std::string system_log_to_string(const SystemRawLog& capture) {
  std::ostringstream os;
  write_system_log(capture, os);
  return os.str();
}

namespace {

using util::parse_hex_u64;
using util::split_ws;
using util::trim;

std::uint64_t parse_addr(std::string_view s, std::size_t line) {
  std::uint64_t v = 0;
  if (!parse_hex_u64(s, v)) {
    throw ParseError(line, "bad hex address '" + std::string(s) + "'");
  }
  return v;
}

std::uint64_t parse_dec(std::string_view s, std::size_t line) {
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      throw ParseError(line, "bad decimal '" + std::string(s) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

SystemRawLog parse_system_log(std::istream& is) {
  SystemRawLog out;
  std::string line;
  std::size_t lineno = 0;
  bool have_event = false;
  SystemRawLog::Entry current;

  const auto flush = [&] {
    if (have_event) {
      out.entries.push_back(std::move(current));
      current = {};
      have_event = false;
    }
  };

  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = split_ws(text);
    const std::string_view kind = fields.front();
    const auto require = [&](bool cond, const char* what) {
      if (!cond) throw ParseError(lineno, what);
    };
    if (kind == "SYSMODULE") {
      require(fields.size() == 4, "SYSMODULE expects 3 fields");
      out.shared_modules.push_back({parse_addr(fields[1], lineno),
                                    parse_addr(fields[2], lineno),
                                    std::string(fields[3])});
    } else if (kind == "SYMBOL") {
      require(fields.size() == 3, "SYMBOL expects 2 fields");
      out.symbols.push_back(
          {parse_addr(fields[1], lineno), std::string(fields[2])});
    } else if (kind == "PROCESSENTRY") {
      require(fields.size() == 3, "PROCESSENTRY expects 2 fields");
      const auto pid =
          static_cast<std::uint32_t>(parse_dec(fields[1], lineno));
      out.process_names[pid] = std::string(fields[2]);
    } else if (kind == "PROCMODULE") {
      require(fields.size() == 5, "PROCMODULE expects 4 fields");
      const auto pid =
          static_cast<std::uint32_t>(parse_dec(fields[1], lineno));
      require(out.process_names.count(pid) > 0,
              "PROCMODULE before PROCESSENTRY");
      out.process_modules[pid].push_back({parse_addr(fields[2], lineno),
                                          parse_addr(fields[3], lineno),
                                          std::string(fields[4])});
    } else if (kind == "SYSEVENT") {
      require(fields.size() == 5, "SYSEVENT expects 4 fields");
      flush();
      current.pid =
          static_cast<std::uint32_t>(parse_dec(fields[1], lineno));
      require(out.process_names.count(current.pid) > 0,
              "SYSEVENT for unknown pid");
      current.event.seq = parse_dec(fields[2], lineno);
      current.event.tid =
          static_cast<std::uint32_t>(parse_dec(fields[3], lineno));
      const auto type = event_type_from_name(fields[4]);
      require(type.has_value(), "unknown event type");
      current.event.type = *type;
      have_event = true;
    } else if (kind == "STACK") {
      require(fields.size() == 2, "STACK expects 1 field");
      require(have_event, "STACK before any SYSEVENT");
      current.event.stack.push_back(parse_addr(fields[1], lineno));
    } else {
      throw ParseError(lineno,
                       "unknown record kind '" + std::string(kind) + "'");
    }
  }
  flush();
  return out;
}

SystemRawLog parse_system_log_string(std::string_view text) {
  std::istringstream is{std::string(text)};
  return parse_system_log(is);
}

}  // namespace leaps::trace
