// Streaming quantile sketches for decision-value monitoring.
//
// QuantileSketch is a KLL-style mergeable sketch with one deliberate
// deviation: compaction keeps alternating halves (even offsets on one
// pass, odd on the next) instead of coin-flipping. The alternation gives
// the same unbiased-in-the-long-run behavior while making the sketch a
// *pure function of its insertion sequence* — two replicas fed the same
// decision values in the same order hold byte-identical state, which is
// what lets the drift drill assert cross-thread-width determinism and
// lets durable recovery rebuild a sketch by re-observing the journaled
// value stream (src/online/drift.h relies on both).
//
// Memory is bounded: ⌈log₂(n/k)⌉ levels of ≤ k doubles each, so ~k·log n
// values summarize any stream. Rank error is O(log(n/k)/k) — at the
// default k=128 the q50/q90/q99 read-outs are well inside what the drift
// trigger or a human eyeballing `leaps-top` needs.
//
// ReservoirWindow is the exact companion: a ring of the last N values in
// arrival order, for the "live" side of the drift comparison and for
// two-sample KS tests that want raw points rather than summaries.
//
// Neither class locks — wrap in obs::Summary (below) or an external mutex
// when shared. Serialization is a versioned little-endian byte string
// (bit-exact round trip) sized for WAL frames and checkpoint blobs.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace leaps::obs {

class QuantileSketch {
 public:
  /// `k` is the per-level compaction buffer size (min 8). Larger k: more
  /// memory, tighter quantiles.
  explicit QuantileSketch(std::uint16_t k = 128);

  void insert(double v);
  /// Folds `other` into this sketch. Equivalent to having inserted the
  /// union (weights are preserved level-wise).
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact extremes over everything inserted (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::uint16_t k() const { return k_; }

  /// Approximate q-quantile, q ∈ [0,1] (clamped). q=0 / q=1 return the
  /// exact min/max; an empty sketch returns 0.
  double quantile(double q) const;

  /// Retained (value, weight) pairs, value-sorted — the KS test consumes
  /// this as a weighted empirical CDF.
  std::vector<std::pair<double, std::uint64_t>> weighted_values() const;

  /// Versioned binary codec; deserialize(serialize()) is bit-exact, and
  /// equal states serialize to equal bytes.
  std::string serialize() const;
  static util::StatusOr<QuantileSketch> deserialize(std::string_view bytes);

  bool operator==(const QuantileSketch& other) const = default;

 private:
  void compact();

  std::uint16_t k_ = 128;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::vector<double>> levels_;  // level i carries weight 2^i
  std::vector<std::uint8_t> keep_odd_;       // next compaction offset, per level
};

/// Exact sliding window: the last `capacity` values in arrival order.
class ReservoirWindow {
 public:
  explicit ReservoirWindow(std::size_t capacity = 256);

  void insert(double v);
  void clear();

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Lifetime insert count (≥ size()).
  std::uint64_t total() const { return total_; }

  /// Window contents, oldest first.
  std::vector<double> values() const;

  std::string serialize() const;
  static util::StatusOr<ReservoirWindow> deserialize(std::string_view bytes);

  bool operator==(const ReservoirWindow& other) const = default;

 private:
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::size_t head_ = 0;  // next write position once the ring is full
  std::vector<double> ring_;
};

/// A registry-friendly summary metric: a mutex-guarded QuantileSketch
/// observed from hot paths and snapshotted at scrape time. Exposed by
/// MetricRegistry as a Prometheus `summary` (quantile/_sum/_count lines).
class Summary {
 public:
  explicit Summary(std::uint16_t k = 128) : sketch_(k) {}

  void observe(double v) {
    const std::lock_guard<std::mutex> lock(mu_);
    sketch_.insert(v);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double q50 = 0.0;
    double q90 = 0.0;
    double q99 = 0.0;
  };
  Snapshot snapshot() const;

  /// Copy of the underlying sketch (for merging/serialization off-path).
  QuantileSketch sketch() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return sketch_;
  }

 private:
  mutable std::mutex mu_;
  QuantileSketch sketch_;
};

}  // namespace leaps::obs
