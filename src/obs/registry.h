// Unified metric registry: named counters, gauges, and histograms with
// Prometheus text-format and JSON exposition.
//
// One process-wide registry (MetricRegistry::global()) is the scrape
// surface for everything: pipeline stages register owned metrics lazily
// (a function-local `static Counter&` caches the name lookup off the hot
// path), and composite holders like serve::ServerMetrics contribute their
// existing atomics through a collector callback — so `leaps-serve
// --metrics-out` exposes serving and ingest/pipeline metrics in one
// document. Tests construct private registries instead of fighting over
// the global one.
//
// Hot-path cost: Counter::inc / Gauge::set are one relaxed atomic RMW;
// histogram recording is obs::LatencyHistogram (a handful of relaxed
// RMWs). Name lookup (counter()/gauge()/histogram()) takes a mutex — do
// it once and keep the reference, which is stable for the registry's
// lifetime.
//
// Naming convention (see DESIGN.md §8): snake_case with a `leaps_` module
// prefix, `_total` suffix on counters, unit suffix (`_us`) on histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/sketch.h"

namespace leaps::obs {

/// Monotonic counter. All mutation is relaxed-atomic.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. iterations of the most
/// recent SVM training run).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram, kSummary };

/// One collected reading, the unit of exposition. Owned metrics produce
/// these from their atomics; collectors append them directly.
struct MetricSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  /// Optional Prometheus label pairs, pre-rendered without the braces
  /// (e.g. `version="0.7",git="abc123"`). Attached to the sample line
  /// only; HELP/TYPE headers always use the bare name.
  std::string labels;
  std::uint64_t counter_value = 0;              // kCounter
  std::int64_t gauge_value = 0;                 // kGauge
  LatencyHistogram::Snapshot histogram;         // kHistogram
  Summary::Snapshot summary;                    // kSummary
};

/// Appends this holder's readings. Called under the registry mutex; must
/// not call back into the registry.
using Collector = std::function<void(std::vector<MetricSample>&)>;

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide scrape surface.
  static MetricRegistry& global();

  /// Finds or creates the named metric. References stay valid for the
  /// registry's lifetime. Re-requesting a name with a different kind
  /// throws std::logic_error (a naming bug, not a runtime condition).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& help = "");
  Summary& summary(const std::string& name, const std::string& help = "");

  /// RAII collector registration; unregisters on destruction. The handle
  /// must not outlive the registry, and the collector's data sources must
  /// outlive the handle.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { swap(other); }
    Registration& operator=(Registration&& other) noexcept {
      reset();
      swap(other);
      return *this;
    }
    ~Registration() { reset(); }
    void reset();

   private:
    friend class MetricRegistry;
    void swap(Registration& other) noexcept {
      std::swap(registry_, other.registry_);
      std::swap(id_, other.id_);
    }
    MetricRegistry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };
  [[nodiscard]] Registration register_collector(Collector collector);

  /// Every reading — owned metrics (name-sorted) first, then collector
  /// output in registration order.
  std::vector<MetricSample> collect() const;

  /// Prometheus text exposition format: `# HELP` / `# TYPE` headers, one
  /// sample line per counter/gauge, and for histograms cumulative
  /// `_bucket{le="..."}` lines derived from the log₂ buckets plus `_sum`
  /// and `_count`.
  std::string to_prometheus() const;

  /// The same readings as one JSON object; histograms carry the full
  /// bucket array plus the inclusive `le_us` boundaries so consumers can
  /// compute any quantile.
  std::string to_json() const;

 private:
  struct Owned {
    MetricType type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    std::unique_ptr<Summary> summary;
  };

  Owned& find_or_create(const std::string& name, const std::string& help,
                        MetricType type);
  void unregister_collector(std::uint64_t id);

  mutable std::mutex mu_;
  std::map<std::string, Owned> owned_;                 // guarded by mu_
  std::map<std::uint64_t, Collector> collectors_;      // guarded by mu_
  std::uint64_t next_collector_id_ = 1;                // guarded by mu_
};

/// Renders samples without a registry (used by MetricsSnapshot-style
/// holders that already have plain values in hand).
std::string samples_to_prometheus(const std::vector<MetricSample>& samples);
std::string samples_to_json(const std::vector<MetricSample>& samples);

}  // namespace leaps::obs
