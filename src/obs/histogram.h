// Lock-free latency histogram with power-of-two (log₂) buckets.
//
// Shared by the serving layer (queue-wait / classify latencies) and the
// observability metric registry. Lives in obs/ — the lowest layer that
// both src/serve/ and the pipeline instrumentation can reach — but keeps
// the exact semantics it had as serve::LatencyHistogram (src/serve/
// re-exports it under that name for existing callers).
//
// Every mutation is relaxed-atomic: record() is called from worker and
// producer threads on the hot path; a snapshot is a best-effort consistent
// read (counters may be mid-update relative to each other, which is fine
// for operational metrics).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace leaps::obs {

/// Histogram over microsecond latencies with power-of-two buckets:
/// bucket i counts samples in [2^(i-1), 2^i) µs (bucket 0 counts < 1 µs).
/// Quantiles are therefore upper bounds with ≤ 2× resolution — plenty for
/// spotting queueing collapse, useless for microbenchmarking (use
/// bench_micro for that).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 28;  // up to ~2 minutes

  void record(std::chrono::nanoseconds elapsed);
  void record_us(std::uint64_t us);

  /// Inclusive upper bound of bucket i, in µs: 2^i − 1 (bucket 0 holds
  /// only sub-µs samples, so its bound is 0). The last bucket saturates —
  /// Prometheus exposition maps it to le="+Inf".
  static std::uint64_t bucket_upper_us(std::size_t i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean_us() const;
    /// Upper bound of the bucket holding the q-quantile sample, in µs.
    std::uint64_t quantile_us(double q) const;
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace leaps::obs
