#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

namespace leaps::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Dense thread numbering plus the per-thread nesting depth. Chrome's
/// trace viewer groups events by (pid, tid); real thread ids are opaque
/// 64-bit values, so spans carry a small stable number instead.
struct ThreadState {
  std::uint32_t tid;
  std::uint32_t depth = 0;
};

ThreadState& thread_state() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local ThreadState state{next_tid.fetch_add(1, kRelaxed)};
  return state;
}

std::chrono::steady_clock::time_point& epoch() {
  static std::chrono::steady_clock::time_point t =
      std::chrono::steady_clock::now();
  return t;
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

Tracer::Tracer() : slots_(new Slot[kCapacity]) {
  epoch();  // pin t=0 at tracer creation
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint32_t depth) {
  const std::uint64_t idx = next_.fetch_add(1, kRelaxed);
  if (idx >= kCapacity) {
    dropped_.fetch_add(1, kRelaxed);
    return;
  }
  Slot& slot = slots_[idx];
  slot.rec = SpanRecord{name, start_ns, dur_ns, thread_state().tid, depth};
  slot.ready.store(true, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::uint64_t n =
      std::min<std::uint64_t>(next_.load(kRelaxed), kCapacity);
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    // Acquire pairs with the writer's release: a ready slot's record is
    // fully visible. A claimed-but-unwritten slot is simply skipped.
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      out.push_back(slots_[i].rec);
    }
  }
  return out;
}

std::size_t Tracer::span_count() const { return snapshot().size(); }

void Tracer::clear() {
  const std::uint64_t n =
      std::min<std::uint64_t>(next_.load(kRelaxed), kCapacity);
  for (std::uint64_t i = 0; i < n; ++i) {
    slots_[i].ready.store(false, kRelaxed);
  }
  dropped_.store(0, kRelaxed);
  next_.store(0, std::memory_order_release);
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out;
  out.reserve(spans.size() * 96 + 16);
  out += "[";
  char buf[160];
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, s.name);
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"leaps\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"depth\":%u}}",
                  static_cast<double>(s.start_ns) / 1000.0,
                  static_cast<double>(s.dur_ns) / 1000.0, s.tid, s.depth);
    out += buf;
  }
  out += "\n]\n";
  return out;
}

std::string Tracer::profile_text() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t min_start_ns = ~std::uint64_t{0};
  };
  const std::vector<SpanRecord> spans = snapshot();
  std::map<std::pair<std::uint32_t, std::string>, Agg> by_stage;
  for (const SpanRecord& s : spans) {
    Agg& a = by_stage[{s.depth, s.name}];
    a.count += 1;
    a.total_ns += s.dur_ns;
    a.max_ns = std::max(a.max_ns, s.dur_ns);
    a.min_start_ns = std::min(a.min_start_ns, s.start_ns);
  }
  // First-start order: for a deterministic pipeline this lays parents
  // before their children and stages in execution order.
  std::vector<std::pair<const std::pair<std::uint32_t, std::string>*,
                        const Agg*>>
      rows;
  rows.reserve(by_stage.size());
  for (const auto& [key, agg] : by_stage) rows.push_back({&key, &agg});
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->min_start_ns < b.second->min_start_ns;
  });

  std::ostringstream os;
  os << "trace profile: " << spans.size() << " spans";
  if (dropped() > 0) os << " (" << dropped() << " dropped, ring full)";
  os << "\n";
  char line[192];
  std::snprintf(line, sizeof line, "  %-36s %8s %12s %12s %12s\n", "stage",
                "count", "total ms", "mean ms", "max ms");
  os << line;
  for (const auto& [key, agg] : rows) {
    const std::string name =
        std::string(2 * key->first, ' ') + key->second;
    const double total_ms = static_cast<double>(agg->total_ns) / 1e6;
    std::snprintf(line, sizeof line, "  %-36s %8llu %12.3f %12.3f %12.3f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(agg->count), total_ms,
                  total_ms / static_cast<double>(agg->count),
                  static_cast<double>(agg->max_ns) / 1e6);
    os << line;
  }
  // Footer: ring-drop accounting, always present so silent span loss (or
  // its absence) is explicit. The same value is scraped as the
  // leaps_trace_spans_dropped_total counter.
  os << "  spans recorded: " << spans.size() << ", dropped: " << dropped()
     << " (ring capacity " << kCapacity << ")\n";
  return os.str();
}

void Span::begin(const char* name) {
  name_ = name;
  start_ns_ = Tracer::now_ns();
  depth_ = thread_state().depth++;
  active_ = true;
}

void Span::end() {
  --thread_state().depth;
  // A span that straddles a disable still records: the slot was the deal
  // when it started, and dropping it would warp the profile's totals.
  Tracer::instance().record(name_, start_ns_, Tracer::now_ns() - start_ns_,
                            depth_);
}

}  // namespace leaps::obs
