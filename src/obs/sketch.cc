#include "obs/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace leaps::obs {

namespace {

constexpr char kSketchMagic[] = "LPQS1";  // 5 bytes, no NUL in stream
constexpr char kWindowMagic[] = "LPRW1";

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Little-endian reader over a byte string; sets `fail` instead of
/// throwing (hostile bytes may arrive via checkpoint files).
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;
  bool fail = false;

  bool take(std::size_t n) {
    if (fail || bytes.size() - pos < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    pos += 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

}  // namespace

QuantileSketch::QuantileSketch(std::uint16_t k) : k_(std::max<std::uint16_t>(k, 8)) {}

void QuantileSketch::insert(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
  if (levels_.empty()) {
    levels_.emplace_back();
    levels_.front().reserve(k_);
    keep_odd_.push_back(0);
  }
  levels_[0].push_back(v);
  if (levels_[0].size() >= k_) compact();
}

void QuantileSketch::compact() {
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    std::vector<double>& buf = levels_[lvl];
    if (buf.size() < k_) continue;
    std::sort(buf.begin(), buf.end());
    if (lvl + 1 == levels_.size()) {
      levels_.emplace_back();
      levels_.back().reserve(k_);
      keep_odd_.push_back(0);
      // levels_ may have reallocated; re-reference the buffer.
    }
    std::vector<double>& up = levels_[lvl + 1];
    std::vector<double>& cur = levels_[lvl];
    // Keep every other element, alternating the starting offset between
    // compactions so neither parity is systematically favored. Fully
    // deterministic: state depends only on the insertion sequence.
    const std::size_t offset = keep_odd_[lvl] ? 1 : 0;
    keep_odd_[lvl] = static_cast<std::uint8_t>(1 - keep_odd_[lvl]);
    for (std::size_t i = offset; i < cur.size(); i += 2) up.push_back(cur[i]);
    cur.clear();
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    keep_odd_.resize(other.levels_.size(), 0);
  }
  for (std::size_t lvl = 0; lvl < other.levels_.size(); ++lvl) {
    levels_[lvl].insert(levels_[lvl].end(), other.levels_[lvl].begin(),
                        other.levels_[lvl].end());
  }
  compact();
}

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::weighted_values()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const std::uint64_t w = std::uint64_t{1} << lvl;
    for (const double v : levels_[lvl]) out.emplace_back(v, w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const std::vector<std::pair<double, std::uint64_t>> wv = weighted_values();
  std::uint64_t total = 0;
  for (const auto& [v, w] : wv) total += w;
  if (total == 0) return min_;
  // Nearest-rank over the weighted sample.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cum = 0;
  for (const auto& [v, w] : wv) {
    cum += w;
    if (cum >= target) return std::clamp(v, min_, max_);
  }
  return max_;
}

std::string QuantileSketch::serialize() const {
  std::string out;
  out.append(kSketchMagic, sizeof(kSketchMagic) - 1);
  put_u16(out, k_);
  put_u64(out, count_);
  put_f64(out, sum_);
  put_f64(out, min_);
  put_f64(out, max_);
  put_u32(out, static_cast<std::uint32_t>(levels_.size()));
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    out.push_back(static_cast<char>(keep_odd_[lvl]));
    put_u32(out, static_cast<std::uint32_t>(levels_[lvl].size()));
    for (const double v : levels_[lvl]) put_f64(out, v);
  }
  return out;
}

util::StatusOr<QuantileSketch> QuantileSketch::deserialize(
    std::string_view bytes) {
  constexpr std::size_t kMagicLen = sizeof(kSketchMagic) - 1;
  if (bytes.size() < kMagicLen ||
      bytes.substr(0, kMagicLen) != kSketchMagic) {
    return util::corrupt_input("quantile sketch: bad magic");
  }
  Cursor c{bytes.substr(kMagicLen)};
  QuantileSketch s(c.u16());
  s.count_ = c.u64();
  s.sum_ = c.f64();
  s.min_ = c.f64();
  s.max_ = c.f64();
  const std::uint32_t n_levels = c.u32();
  if (c.fail || n_levels > 64) {
    return util::corrupt_input("quantile sketch: truncated header");
  }
  std::uint64_t retained = 0;
  for (std::uint32_t lvl = 0; lvl < n_levels; ++lvl) {
    if (!c.take(1)) break;
    const auto flag = static_cast<std::uint8_t>(c.bytes[c.pos++]);
    const std::uint32_t n = c.u32();
    if (c.fail || flag > 1 || n > 4u * s.k_ ||
        (c.bytes.size() - c.pos) / 8 < n) {
      return util::corrupt_input("quantile sketch: implausible level");
    }
    s.keep_odd_.push_back(flag);
    std::vector<double> level;
    level.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) level.push_back(c.f64());
    retained += (std::uint64_t{1} << lvl) * n;
    s.levels_.push_back(std::move(level));
  }
  if (c.fail || c.pos != c.bytes.size() || retained != s.count_) {
    return util::corrupt_input("quantile sketch: truncated or inconsistent");
  }
  return s;
}

ReservoirWindow::ReservoirWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void ReservoirWindow::insert(double v) {
  total_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(v);
    return;
  }
  ring_[head_] = v;
  head_ = (head_ + 1) % capacity_;
}

void ReservoirWindow::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

std::vector<double> ReservoirWindow::values() const {
  std::vector<double> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string ReservoirWindow::serialize() const {
  std::string out;
  out.append(kWindowMagic, sizeof(kWindowMagic) - 1);
  put_u64(out, capacity_);
  put_u64(out, total_);
  const std::vector<double> vals = values();  // oldest-first normal form
  put_u32(out, static_cast<std::uint32_t>(vals.size()));
  for (const double v : vals) put_f64(out, v);
  return out;
}

util::StatusOr<ReservoirWindow> ReservoirWindow::deserialize(
    std::string_view bytes) {
  constexpr std::size_t kMagicLen = sizeof(kWindowMagic) - 1;
  if (bytes.size() < kMagicLen ||
      bytes.substr(0, kMagicLen) != kWindowMagic) {
    return util::corrupt_input("reservoir window: bad magic");
  }
  Cursor c{bytes.substr(kMagicLen)};
  const std::uint64_t capacity = c.u64();
  const std::uint64_t total = c.u64();
  const std::uint32_t n = c.u32();
  if (c.fail || capacity == 0 || n > capacity || n > total ||
      (c.bytes.size() - c.pos) / 8 < n) {
    return util::corrupt_input("reservoir window: implausible header");
  }
  ReservoirWindow w(static_cast<std::size_t>(capacity));
  for (std::uint32_t i = 0; i < n; ++i) w.ring_.push_back(c.f64());
  w.total_ = total;
  if (c.fail || c.pos != c.bytes.size()) {
    return util::corrupt_input("reservoir window: truncated");
  }
  return w;
}

Summary::Snapshot Summary::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.count = sketch_.count();
  s.sum = sketch_.sum();
  s.min = sketch_.min();
  s.max = sketch_.max();
  s.q50 = sketch_.quantile(0.50);
  s.q90 = sketch_.quantile(0.90);
  s.q99 = sketch_.quantile(0.99);
  return s;
}

}  // namespace leaps::obs
