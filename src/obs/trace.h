// Span tracing for the LEAPS pipeline and serving stack.
//
// Production code marks the stages worth timing:
//
//   void LeapsPipeline::prepare(...) {
//     LEAPS_SPAN("pipeline.prepare");
//     { LEAPS_SPAN("pipeline.preprocess"); ... }
//     ...
//   }
//
// Disabled (the default), a span site costs one relaxed atomic load and a
// predicted branch — the same budget as util/fault.h's fault points, cheap
// enough to compile into every hot path unconditionally. Enabled, each
// completed span claims one slot in a fixed-capacity lock-free ring of
// records (name, start, duration, thread, nesting depth); when the ring is
// full further spans are counted as dropped, never blocked on.
//
// Two export formats:
//   * chrome_trace_json() — a Chrome trace-event array ("X" complete
//     events) that loads directly in chrome://tracing and Perfetto,
//   * profile_text()      — an aggregated per-stage summary (count /
//     total / mean / max), tree-indented by nesting depth.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is stored. Spans may be opened from any thread;
// snapshot()/export run concurrently with recording and see every span
// committed before the call. clear() is NOT safe concurrent with
// recording — quiesce first (tests and benchmarks only).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace leaps::obs {

namespace internal {
/// The macro fast path reads this directly: constant-initialized, so there
/// is no function-local-static guard in the disabled path.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

/// One completed span. Times are nanoseconds since the tracer's epoch
/// (the first Tracer::instance() call).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    // dense per-process thread number, from 1
  std::uint32_t depth = 0;  // nesting depth on its thread, from 0
};

class Tracer {
 public:
  /// Ring capacity in records. ~32 B/record → ~2 MiB resident, enough for
  /// a full training run plus a replay (the profile aggregates, so a
  /// saturated ring still yields correct per-stage *ratios* for the
  /// recorded prefix; `dropped()` says when that happened).
  static constexpr std::size_t kCapacity = std::size_t{1} << 16;

  static Tracer& instance();

  /// The span-site gate: one relaxed atomic load.
  static bool enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    instance();  // pin the epoch before the first span starts
    internal::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  /// Commits one completed span (called by Span's destructor).
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t depth);

  /// Nanoseconds since the tracer epoch.
  static std::uint64_t now_ns();

  /// Committed records in ring-claim order. Safe concurrent with
  /// recording: sees every span committed before the call.
  std::vector<SpanRecord> snapshot() const;
  std::size_t span_count() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drops every record and resets the drop counter. Not safe concurrent
  /// with recording.
  void clear();

  /// Chrome trace-event JSON: an array of "X" (complete) events with ts /
  /// dur in microseconds — loads in chrome://tracing and Perfetto.
  std::string chrome_trace_json() const;

  /// Aggregated per-stage profile: one line per (name, depth), indented by
  /// depth, ordered by first start time — for deterministic pipelines this
  /// reads as the call tree. Columns: count, total ms, mean ms, max ms.
  std::string profile_text() const;

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    SpanRecord rec;
  };

  Tracer();

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span scope. When tracing is disabled at construction the whole
/// object is inert (the destructor reads one plain bool member).
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::enabled()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace leaps::obs

#define LEAPS_SPAN_CONCAT_IMPL(a, b) a##b
#define LEAPS_SPAN_CONCAT(a, b) LEAPS_SPAN_CONCAT_IMPL(a, b)

/// Times the enclosing scope as one span. `name` must be a string literal.
#define LEAPS_SPAN(name) \
  ::leaps::obs::Span LEAPS_SPAN_CONCAT(leaps_span_, __LINE__)(name)
