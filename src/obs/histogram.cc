#include "obs/histogram.h"

#include <bit>

namespace leaps::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// fetch_max for pre-C++26 atomics.
void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t value) {
  std::uint64_t seen = a.load(kRelaxed);
  while (seen < value && !a.compare_exchange_weak(seen, value, kRelaxed)) {
  }
}

std::size_t bucket_index(std::uint64_t us) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(us));
  return w < LatencyHistogram::kBuckets ? w : LatencyHistogram::kBuckets - 1;
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds elapsed) {
  record_us(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
}

void LatencyHistogram::record_us(std::uint64_t us) {
  buckets_[bucket_index(us)].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  total_us_.fetch_add(us, kRelaxed);
  atomic_max(max_us_, us);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(kRelaxed);
  s.total_us = total_us_.load(kRelaxed);
  s.max_us = max_us_.load(kRelaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(kRelaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::mean_us() const {
  return count == 0 ? 0.0
                    : static_cast<double>(total_us) / static_cast<double>(count);
}

std::uint64_t LatencyHistogram::Snapshot::quantile_us(double q) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return bucket_upper_us(i);
  }
  return max_us;
}

}  // namespace leaps::obs
