#include "obs/registry.h"

#include <sstream>
#include <stdexcept>

namespace leaps::obs {

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void histogram_prometheus(std::ostringstream& os, const std::string& name,
                          const LatencyHistogram::Snapshot& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.buckets[i];
    if (i + 1 == LatencyHistogram::kBuckets) {
      // The last bucket saturates (everything ≥ ~2 min), so its true
      // upper bound is infinity, and cumulative == count here.
      os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    } else {
      os << name << "_bucket{le=\""
         << LatencyHistogram::bucket_upper_us(i) << "\"} " << cumulative
         << "\n";
    }
  }
  os << name << "_sum " << h.total_us << "\n";
  os << name << "_count " << h.count << "\n";
}

void histogram_json(std::ostringstream& os,
                    const LatencyHistogram::Snapshot& h) {
  os << "\"count\":" << h.count << ",\"total_us\":" << h.total_us
     << ",\"max_us\":" << h.max_us << ",\"p50_us\":" << h.quantile_us(0.50)
     << ",\"p95_us\":" << h.quantile_us(0.95)
     << ",\"p99_us\":" << h.quantile_us(0.99) << ",\"le_us\":[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    // The saturated last bucket has no finite bound; emit -1 as the JSON
    // stand-in for +Inf (the Prometheus rendering uses le="+Inf").
    if (i + 1 == LatencyHistogram::kBuckets) {
      os << -1;
    } else {
      os << LatencyHistogram::bucket_upper_us(i);
    }
  }
  os << "],\"buckets\":[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    os << h.buckets[i];
  }
  os << "]";
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Owned& MetricRegistry::find_or_create(const std::string& name,
                                                      const std::string& help,
                                                      MetricType type) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    Owned owned;
    owned.type = type;
    owned.help = help;
    switch (type) {
      case MetricType::kCounter:
        owned.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        owned.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        owned.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    it = owned_.emplace(name, std::move(owned)).first;
  } else if (it->second.type != type) {
    throw std::logic_error("metric '" + name + "' already registered as " +
                           type_name(it->second.type) + ", requested as " +
                           type_name(type));
  }
  return it->second;
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const std::string& help) {
  return *find_or_create(name, help, MetricType::kCounter).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name,
                             const std::string& help) {
  return *find_or_create(name, help, MetricType::kGauge).gauge;
}

LatencyHistogram& MetricRegistry::histogram(const std::string& name,
                                            const std::string& help) {
  return *find_or_create(name, help, MetricType::kHistogram).histogram;
}

MetricRegistry::Registration MetricRegistry::register_collector(
    Collector collector) {
  const std::lock_guard<std::mutex> lock(mu_);
  Registration handle;
  handle.registry_ = this;
  handle.id_ = next_collector_id_++;
  collectors_.emplace(handle.id_, std::move(collector));
  return handle;
}

void MetricRegistry::unregister_collector(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

void MetricRegistry::Registration::reset() {
  if (registry_ != nullptr) registry_->unregister_collector(id_);
  registry_ = nullptr;
  id_ = 0;
}

std::vector<MetricSample> MetricRegistry::collect() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(owned_.size());
  for (const auto& [name, owned] : owned_) {
    MetricSample s;
    s.name = name;
    s.help = owned.help;
    s.type = owned.type;
    switch (owned.type) {
      case MetricType::kCounter:
        s.counter_value = owned.counter->value();
        break;
      case MetricType::kGauge:
        s.gauge_value = owned.gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = owned.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  for (const auto& [id, collector] : collectors_) collector(out);
  return out;
}

std::string samples_to_prometheus(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    if (!s.help.empty()) os << "# HELP " << s.name << " " << s.help << "\n";
    os << "# TYPE " << s.name << " " << type_name(s.type) << "\n";
    switch (s.type) {
      case MetricType::kCounter:
        os << s.name << " " << s.counter_value << "\n";
        break;
      case MetricType::kGauge:
        os << s.name << " " << s.gauge_value << "\n";
        break;
      case MetricType::kHistogram:
        histogram_prometheus(os, s.name, s.histogram);
        break;
    }
  }
  return os.str();
}

std::string samples_to_json(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ",";
    first = false;
    os << "\n\"";
    append_json_escaped(os, s.name);
    os << "\":{\"type\":\"" << type_name(s.type) << "\",";
    switch (s.type) {
      case MetricType::kCounter:
        os << "\"value\":" << s.counter_value;
        break;
      case MetricType::kGauge:
        os << "\"value\":" << s.gauge_value;
        break;
      case MetricType::kHistogram:
        histogram_json(os, s.histogram);
        break;
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

std::string MetricRegistry::to_prometheus() const {
  return samples_to_prometheus(collect());
}

std::string MetricRegistry::to_json() const {
  return samples_to_json(collect());
}

}  // namespace leaps::obs
