#include "obs/registry.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/trace.h"
#include "util/build_info.h"

namespace leaps::obs {

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
    case MetricType::kSummary:
      return "summary";
  }
  return "unknown";
}

/// Prometheus float rendering: shortest round-trippable-enough form, with
/// the spec's spellings for the non-finite values.
void append_double(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

/// `name` or `name{labels}`.
void append_sample_name(std::ostringstream& os, const MetricSample& s) {
  os << s.name;
  if (!s.labels.empty()) os << "{" << s.labels << "}";
}

void summary_prometheus(std::ostringstream& os, const MetricSample& s) {
  const std::string prefix = s.labels.empty() ? "" : s.labels + ",";
  const std::pair<const char*, double> quantiles[] = {
      {"0.5", s.summary.q50}, {"0.9", s.summary.q90}, {"0.99", s.summary.q99}};
  for (const auto& [q, v] : quantiles) {
    os << s.name << "{" << prefix << "quantile=\"" << q << "\"} ";
    append_double(os, v);
    os << "\n";
  }
  os << s.name << "_sum";
  if (!s.labels.empty()) os << "{" << s.labels << "}";
  os << " ";
  append_double(os, s.summary.sum);
  os << "\n" << s.name << "_count";
  if (!s.labels.empty()) os << "{" << s.labels << "}";
  os << " " << s.summary.count << "\n";
}

void summary_json(std::ostringstream& os, const Summary::Snapshot& s) {
  os << "\"count\":" << s.count << ",\"sum\":";
  append_double(os, s.sum);
  os << ",\"min\":";
  append_double(os, s.min);
  os << ",\"max\":";
  append_double(os, s.max);
  os << ",\"q50\":";
  append_double(os, s.q50);
  os << ",\"q90\":";
  append_double(os, s.q90);
  os << ",\"q99\":";
  append_double(os, s.q99);
}

void histogram_prometheus(std::ostringstream& os, const std::string& name,
                          const LatencyHistogram::Snapshot& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.buckets[i];
    if (i + 1 == LatencyHistogram::kBuckets) {
      // The last bucket saturates (everything ≥ ~2 min), so its true
      // upper bound is infinity, and cumulative == count here.
      os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    } else {
      os << name << "_bucket{le=\""
         << LatencyHistogram::bucket_upper_us(i) << "\"} " << cumulative
         << "\n";
    }
  }
  os << name << "_sum " << h.total_us << "\n";
  os << name << "_count " << h.count << "\n";
}

void histogram_json(std::ostringstream& os,
                    const LatencyHistogram::Snapshot& h) {
  os << "\"count\":" << h.count << ",\"total_us\":" << h.total_us
     << ",\"max_us\":" << h.max_us << ",\"p50_us\":" << h.quantile_us(0.50)
     << ",\"p95_us\":" << h.quantile_us(0.95)
     << ",\"p99_us\":" << h.quantile_us(0.99) << ",\"le_us\":[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    // The saturated last bucket has no finite bound; emit -1 as the JSON
    // stand-in for +Inf (the Prometheus rendering uses le="+Inf").
    if (i + 1 == LatencyHistogram::kBuckets) {
      os << -1;
    } else {
      os << LatencyHistogram::bucket_upper_us(i);
    }
  }
  os << "],\"buckets\":[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    os << h.buckets[i];
  }
  os << "]";
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  // Process-wide collectors live only on the global registry (private test
  // registries stay empty until populated). Destroyed before `registry`
  // (constructed after it), so reset() never dangles.
  static const auto collectors = [] {
    struct GlobalCollectors {
      Registration build_info;
      Registration tracer;
    } c;
    c.build_info = registry.register_collector(
        [](std::vector<MetricSample>& out) {
          MetricSample s;
          s.name = "leaps_build_info";
          s.help =
              "build identity: constant 1, labels carry version/SHA/type";
          s.type = MetricType::kGauge;
          s.gauge_value = 1;
          s.labels = std::string("version=\"") + util::kVersion +
                     "\",git_sha=\"" + util::kGitSha + "\",build_type=\"" +
                     util::kBuildType + "\",sanitizer=\"" + util::kSanitizer +
                     "\"";
          out.push_back(std::move(s));
        });
    c.tracer = registry.register_collector([](std::vector<MetricSample>& out) {
      MetricSample s;
      s.name = "leaps_trace_spans_dropped_total";
      s.help = "spans lost because the tracer ring was full";
      s.type = MetricType::kCounter;
      s.counter_value = Tracer::instance().dropped();
      out.push_back(std::move(s));
    });
    return c;
  }();
  (void)collectors;
  return registry;
}

MetricRegistry::Owned& MetricRegistry::find_or_create(const std::string& name,
                                                      const std::string& help,
                                                      MetricType type) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    Owned owned;
    owned.type = type;
    owned.help = help;
    switch (type) {
      case MetricType::kCounter:
        owned.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        owned.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        owned.histogram = std::make_unique<LatencyHistogram>();
        break;
      case MetricType::kSummary:
        owned.summary = std::make_unique<Summary>();
        break;
    }
    it = owned_.emplace(name, std::move(owned)).first;
  } else if (it->second.type != type) {
    throw std::logic_error("metric '" + name + "' already registered as " +
                           type_name(it->second.type) + ", requested as " +
                           type_name(type));
  }
  return it->second;
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const std::string& help) {
  return *find_or_create(name, help, MetricType::kCounter).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name,
                             const std::string& help) {
  return *find_or_create(name, help, MetricType::kGauge).gauge;
}

LatencyHistogram& MetricRegistry::histogram(const std::string& name,
                                            const std::string& help) {
  return *find_or_create(name, help, MetricType::kHistogram).histogram;
}

Summary& MetricRegistry::summary(const std::string& name,
                                 const std::string& help) {
  return *find_or_create(name, help, MetricType::kSummary).summary;
}

MetricRegistry::Registration MetricRegistry::register_collector(
    Collector collector) {
  const std::lock_guard<std::mutex> lock(mu_);
  Registration handle;
  handle.registry_ = this;
  handle.id_ = next_collector_id_++;
  collectors_.emplace(handle.id_, std::move(collector));
  return handle;
}

void MetricRegistry::unregister_collector(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

void MetricRegistry::Registration::reset() {
  if (registry_ != nullptr) registry_->unregister_collector(id_);
  registry_ = nullptr;
  id_ = 0;
}

std::vector<MetricSample> MetricRegistry::collect() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(owned_.size());
  for (const auto& [name, owned] : owned_) {
    MetricSample s;
    s.name = name;
    s.help = owned.help;
    s.type = owned.type;
    switch (owned.type) {
      case MetricType::kCounter:
        s.counter_value = owned.counter->value();
        break;
      case MetricType::kGauge:
        s.gauge_value = owned.gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = owned.histogram->snapshot();
        break;
      case MetricType::kSummary:
        s.summary = owned.summary->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  for (const auto& [id, collector] : collectors_) collector(out);
  return out;
}

std::string samples_to_prometheus(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    if (!s.help.empty()) os << "# HELP " << s.name << " " << s.help << "\n";
    os << "# TYPE " << s.name << " " << type_name(s.type) << "\n";
    switch (s.type) {
      case MetricType::kCounter:
        append_sample_name(os, s);
        os << " " << s.counter_value << "\n";
        break;
      case MetricType::kGauge:
        append_sample_name(os, s);
        os << " " << s.gauge_value << "\n";
        break;
      case MetricType::kHistogram:
        histogram_prometheus(os, s.name, s.histogram);
        break;
      case MetricType::kSummary:
        summary_prometheus(os, s);
        break;
    }
  }
  return os.str();
}

std::string samples_to_json(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ",";
    first = false;
    os << "\n\"";
    append_json_escaped(os, s.name);
    os << "\":{\"type\":\"" << type_name(s.type) << "\",";
    if (!s.labels.empty()) {
      os << "\"labels\":\"";
      append_json_escaped(os, s.labels);
      os << "\",";
    }
    switch (s.type) {
      case MetricType::kCounter:
        os << "\"value\":" << s.counter_value;
        break;
      case MetricType::kGauge:
        os << "\"value\":" << s.gauge_value;
        break;
      case MetricType::kHistogram:
        histogram_json(os, s.histogram);
        break;
      case MetricType::kSummary:
        summary_json(os, s.summary);
        break;
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

std::string MetricRegistry::to_prometheus() const {
  return samples_to_prometheus(collect());
}

std::string MetricRegistry::to_json() const {
  return samples_to_json(collect());
}

}  // namespace leaps::obs
