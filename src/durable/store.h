// DurableStore — crash-safe persistence for a served profile.
//
// Two files in one directory own everything the deployment has learned:
//
//   snapshot.leaps   atomic v1 snapshot (temp → fsync → rename): last
//                    folded LSN, accounting baseline, the incumbent
//                    detector (embedded v3 bytes, CRC-framed), pending
//                    retrain windows, and the quarantine list
//   journal.wal      append-only WAL (durable/wal.h) of everything that
//                    happened since the snapshot
//
// Write path: the online subsystem journals admitted windows, retrain
// outcomes, promotions and rollbacks as they happen; every
// checkpoint_every_appends appends (and on every promotion) the caller
// folds current state into a fresh snapshot and truncates the journal.
// Promotion/quarantine records embed the candidate's full serialized
// bytes, so a crash after the append but before the checkpoint still
// recovers the exact promoted detector.
//
// Recovery: load the last good snapshot (damage there is a typed
// PersistError — a corrupt snapshot is an operator problem, not something
// to silently cold-start over), scan the journal truncating a torn tail,
// drop records already folded (lsn ≤ snapshot LSN — the crash-between-
// rename-and-truncate case), and replay the rest in order. The result
// hands the caller the incumbent detector, the windows to re-observe, the
// accounting baseline, and the quarantine list.
//
// Thread-safety: every member serializes on one internal mutex, so
// journaling from worker threads (the server's window tap) is safe
// against the manager thread's records and checkpoints — a WAL record is
// two write() calls and a checkpoint is a sync/snapshot/truncate sequence;
// neither may interleave. The mutex does NOT make a caller's state capture
// atomic with the checkpoint; OnlineManager holds its own tap fence across
// capture→checkpoint so nothing is journaled into the truncated gap.
//
// Exported metrics (all eager — zero and absent must differ):
//   leaps_durable_journal_appends_total / _bytes_total
//   leaps_durable_checkpoints_total
//   leaps_durable_recoveries_total
//   leaps_durable_torn_tail_truncations_total
//   leaps_durable_records_replayed_total
//   leaps_durable_recovery_duration_us (gauge)
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/persist.h"
#include "core/pipeline.h"
#include "durable/wal.h"
#include "obs/registry.h"
#include "trace/partition.h"
#include "util/status.h"

namespace leaps::durable {

struct DurableOptions {
  /// Directory holding snapshot.leaps + journal.wal (created on open()).
  std::string dir;
  /// Journal appends between automatic checkpoints (should_checkpoint()).
  std::size_t checkpoint_every_appends = 256;
};

/// Terminal-state accounting baseline carried across restarts. Captured at
/// checkpoint as ingested := processed + dropped + quarantined — events
/// still in flight at the crash never reach a terminal state, so counting
/// them ingested would break the accounting identity forever.
struct AccountingBaseline {
  std::uint64_t ingested = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t quarantined = 0;
};

/// One window awaiting (re-)observation by the online accumulator.
struct DurableWindow {
  std::vector<trace::PartitionedEvent> events;
};

/// One drift observation: a scored window's decision value and verdict.
struct DriftSample {
  double value = 0.0;
  int label = 0;  // +1 benign / -1 malicious
};

/// One replayed drift-relevant journal record, in journal order. The
/// caller folds these into its DriftMonitor after restoring the snapshot
/// blob: kObserve re-observes a value, kTrigger re-latches a fired
/// trigger, kRetrain marks the consumption point (a pending trigger at a
/// retrain record was consumed by that retrain pre-crash).
struct DriftReplayOp {
  enum class Kind : std::uint8_t { kObserve, kTrigger, kRetrain };
  Kind kind = Kind::kObserve;
  double value = 0.0;  // kObserve only
  int label = 0;       // kObserve only
};

/// Everything checkpoint() folds into a snapshot.
struct CheckpointState {
  std::shared_ptr<const core::Detector> detector;  // incumbent (required)
  std::vector<DurableWindow> pending_windows;
  std::vector<std::shared_ptr<const core::Detector>> quarantined;
  AccountingBaseline accounting;
  /// Opaque serialized DriftMonitor state; empty = drift disabled (the
  /// snapshot then carries no DRIFT blob and stays loadable by readers
  /// that never heard of drift).
  std::string drift;
};

/// Everything recover() reconstructs.
struct RecoveredState {
  bool snapshot_found = false;
  std::shared_ptr<const core::Detector> detector;  // null → cold start
  std::vector<DurableWindow> pending_windows;      // snapshot + journal
  std::vector<std::shared_ptr<const core::Detector>> quarantined;
  AccountingBaseline accounting;
  /// Serialized DriftMonitor state from the snapshot's DRIFT blob (empty
  /// when the snapshot predates drift or drift was disabled).
  std::string drift;
  /// Drift journal records after the snapshot, in journal order.
  std::vector<DriftReplayOp> drift_ops;
  std::uint64_t last_lsn = 0;        // highest LSN seen anywhere
  std::uint64_t replayed = 0;        // journal records applied
  std::uint64_t skipped = 0;         // records at/below the snapshot LSN
  bool torn_tail = false;            // journal tail was truncated
  std::string torn_reason;
};

// Window payload codec (also used by tests and the corruption corpus).
std::string encode_window(const trace::PartitionedEvent* events,
                          std::size_t count);
util::StatusOr<std::vector<trace::PartitionedEvent>> decode_window(
    std::string_view payload);

class DurableStore {
 public:
  explicit DurableStore(DurableOptions options);

  /// Creates the directory if needed and opens the journal for append,
  /// seeding the LSN counter past everything already on disk. A torn
  /// journal tail is physically truncated here (counted, and reported by
  /// the next recover()) so the writer can never append records behind
  /// garbage where no scan would reach them. recover() may be called
  /// before or after open(); journaling requires open().
  util::Status open();

  std::string snapshot_path() const { return options_.dir + "/snapshot.leaps"; }
  std::string journal_path() const { return options_.dir + "/journal.wal"; }

  // --- journaling (require open()) --------------------------------------
  util::Status journal_window(const trace::PartitionedEvent* events,
                              std::size_t count);
  /// `drain_lsn` is last_lsn() captured at the instant the retrain drained
  /// the accumulator (under the caller's tap fence, so every journaled
  /// window at or below it is provably in the drained set). Replay drops
  /// exactly the pending windows journaled at or below `drain_lsn` —
  /// windows journaled while the retrain was still training stay pending.
  util::Status journal_retrain(std::uint64_t drain_lsn, bool ok,
                               std::uint64_t new_samples,
                               const std::string& detail);
  util::Status journal_promotion(const core::Detector& candidate);
  util::Status journal_quarantine(const core::Detector& candidate);
  /// Decision values the drift monitor observed since the last flush
  /// (batched — one record per manager poll, not per window).
  util::Status journal_drift_batch(const DriftSample* samples,
                                   std::size_t count);
  /// A drift trigger fired; `assigned_lsn` (when non-null) receives the
  /// record's LSN — the drift drill asserts a recovered run re-fires at
  /// the same one.
  util::Status journal_drift_trigger(std::uint32_t generation,
                                     double p_value,
                                     std::uint64_t* assigned_lsn = nullptr);

  /// Highest LSN assigned so far (0 when none yet). Requires open().
  std::uint64_t last_lsn() const;

  /// True once enough appends have accumulated since the last checkpoint.
  bool should_checkpoint() const;

  /// Folds `state` into a fresh atomic snapshot, then truncates the
  /// journal. Fault point "durable.checkpoint.pre_truncate" sits between
  /// the two — the crash window the LSN guard exists for.
  util::Status checkpoint(const CheckpointState& state);

  /// Loads snapshot + journal into a RecoveredState. Corrupt snapshots
  /// and foreign journal magic are errors; a torn journal tail is
  /// truncated, counted, and reported in the result.
  util::StatusOr<RecoveredState> recover();

  const DurableOptions& options() const { return options_; }

 private:
  struct Metrics {
    obs::Counter& journal_appends;
    obs::Counter& journal_bytes;
    obs::Counter& checkpoints;
    obs::Counter& recoveries;
    obs::Counter& torn_truncations;
    obs::Counter& records_replayed;
    obs::Gauge& recovery_duration_us;
    Metrics();
  };

  util::Status journal(WalRecordType type, std::string_view payload,
                       std::uint64_t* assigned_lsn = nullptr);
  util::Status write_snapshot(const CheckpointState& state,
                              std::uint64_t lsn);

  const DurableOptions options_;
  Metrics metrics_;
  /// Serializes journal appends (worker taps and the manager thread),
  /// checkpoints, open() and recover() against each other.
  mutable std::mutex mu_;
  WalWriter wal_;                               // guarded by mu_
  std::uint64_t appends_since_checkpoint_ = 0;  // guarded by mu_
  bool open_truncated_tail_ = false;            // guarded by mu_
  std::string open_torn_reason_;                // guarded by mu_
};

}  // namespace leaps::durable
