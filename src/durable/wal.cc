#include "durable/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/persist.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace leaps::durable {

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
constexpr std::size_t kBodyPrefixBytes = 9;   // u8 type + u64 lsn
// A single record larger than this is framing damage, not data.
constexpr std::size_t kMaxRecordBytes = std::size_t{64} << 20;

std::string errno_text(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

util::Status write_all(int fd, const char* data, std::size_t size,
                       const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::unavailable(errno_text("write", path));
    }
    done += static_cast<std::size_t>(n);
  }
  return util::ok_status();
}

}  // namespace

WalWriter::~WalWriter() { close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      next_lsn_(other.next_lsn_),
      appends_(other.appends_),
      failed_(other.failed_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    next_lsn_ = other.next_lsn_;
    appends_ = other.appends_;
    failed_ = other.failed_;
  }
  return *this;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status WalWriter::open(const std::string& path,
                             std::uint64_t next_lsn) {
  close();
  path_ = path;
  next_lsn_ = next_lsn == 0 ? 1 : next_lsn;
  appends_ = 0;
  failed_ = false;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return util::unavailable(errno_text("open", path));
  const ::off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    return write_all(fd_, kWalMagic.data(), kWalMagic.size(), path_);
  }
  return util::ok_status();
}

util::Status WalWriter::rolled_back(util::Status status, ::off_t start) {
  // A partial record would stop every future scan right here while later
  // appends kept "succeeding" into the unreachable region — either give
  // the bytes back or refuse all further appends.
  if (::ftruncate(fd_, start) != 0) failed_ = true;
  return status;
}

util::Status WalWriter::append(WalRecordType type, std::string_view payload,
                               std::uint64_t* assigned_lsn) {
  if (fd_ < 0) return util::internal_error("WAL not open");
  if (failed_) {
    return util::internal_error(
        "WAL writer disabled: an earlier append left a torn record that "
        "could not be rolled back; records after it would be unreachable "
        "to recovery (checkpoint to truncate and re-enable)");
  }
  const ::off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) return util::unavailable(errno_text("lseek", path_));
  std::string body;
  body.reserve(kBodyPrefixBytes + payload.size());
  body.push_back(static_cast<char>(type));
  put_u64(body, next_lsn_);
  body.append(payload);

  std::string header;
  put_u32(header, static_cast<std::uint32_t>(body.size()));
  put_u32(header, util::crc32c(body));

  // Header first, as its own write: a crash between the two leaves a
  // valid-header/short-body torn tail — the exact shape recovery must
  // truncate and the corruption corpus must flag. An injected `throw` or
  // `exit` here simulates that crash (no rollback — the torn bytes are
  // the drill); an injected `error` behaves like a failed body write and
  // exercises the rollback below.
  util::Status status = write_all(fd_, header.data(), header.size(), path_);
  if (!status.ok()) return rolled_back(std::move(status), start);
  {
    auto& injector = util::FaultInjector::instance();
    if (injector.any_armed()) {
      util::Status injected = injector.hit("durable.wal.append.mid");
      if (!injected.ok()) return rolled_back(std::move(injected), start);
    }
  }
  status = write_all(fd_, body.data(), body.size(), path_);
  if (!status.ok()) return rolled_back(std::move(status), start);
  if (assigned_lsn != nullptr) *assigned_lsn = next_lsn_;
  ++next_lsn_;
  ++appends_;
  return util::ok_status();
}

util::Status WalWriter::sync() {
  if (fd_ < 0) return util::internal_error("WAL not open");
  if (::fsync(fd_) != 0) return util::unavailable(errno_text("fsync", path_));
  return util::ok_status();
}

util::Status WalWriter::truncate() {
  if (fd_ < 0) return util::internal_error("WAL not open");
  if (::ftruncate(fd_, static_cast<::off_t>(kWalMagic.size())) != 0) {
    return util::unavailable(errno_text("ftruncate", path_));
  }
  if (::fsync(fd_) != 0) return util::unavailable(errno_text("fsync", path_));
  failed_ = false;  // whatever damage poisoned the writer is gone now
  return util::ok_status();
}

namespace {

/// Shared scanning core: fills `scan`; returns non-OK only for damage that
/// precedes any record (missing/foreign magic) or I/O errors.
util::Status scan_into(const std::string& path, WalScan& scan) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::not_found("cannot open WAL: " + path);

  std::string magic(kWalMagic.size(), '\0');
  is.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (static_cast<std::size_t>(is.gcount()) != kWalMagic.size() ||
      magic != kWalMagic) {
    return util::corrupt_input("bad WAL magic in " + path);
  }

  std::uint64_t offset = kWalMagic.size();
  std::uint64_t prev_lsn = 0;
  for (;;) {
    unsigned char header[kFrameHeaderBytes];
    is.read(reinterpret_cast<char*>(header),
            static_cast<std::streamsize>(kFrameHeaderBytes));
    const auto header_got = static_cast<std::size_t>(is.gcount());
    if (header_got == 0) break;  // clean end
    if (header_got < kFrameHeaderBytes) {
      scan.torn = true;
      scan.torn_offset = offset;
      scan.torn_reason = "torn WAL record header at byte offset " +
                         std::to_string(offset) + ": " +
                         std::to_string(header_got) + " of 8 bytes";
      break;
    }
    const std::uint32_t body_len = get_u32(header);
    const std::uint32_t stored_crc = get_u32(header + 4);
    if (body_len < kBodyPrefixBytes || body_len > kMaxRecordBytes) {
      scan.torn = true;
      scan.torn_offset = offset;
      scan.torn_reason = "implausible WAL record length " +
                         std::to_string(body_len) + " at byte offset " +
                         std::to_string(offset);
      break;
    }
    std::string body(body_len, '\0');
    is.read(body.data(), static_cast<std::streamsize>(body_len));
    const auto body_got = static_cast<std::size_t>(is.gcount());
    if (body_got < body_len) {
      scan.torn = true;
      scan.torn_offset = offset;
      scan.torn_reason =
          "torn WAL record at byte offset " + std::to_string(offset) +
          ": header promises " + std::to_string(body_len) +
          " body bytes, file ends after " + std::to_string(body_got);
      break;
    }
    if (util::crc32c(body) != stored_crc) {
      scan.torn = true;
      scan.torn_offset = offset;
      scan.torn_reason = "WAL record checksum mismatch at byte offset " +
                         std::to_string(offset);
      break;
    }
    const auto* bytes = reinterpret_cast<const unsigned char*>(body.data());
    WalRecord record;
    record.type = static_cast<WalRecordType>(bytes[0]);
    record.lsn = get_u64(bytes + 1);
    if (record.lsn <= prev_lsn) {
      scan.torn = true;
      scan.torn_offset = offset;
      scan.torn_reason = "non-monotonic WAL LSN " +
                         std::to_string(record.lsn) + " at byte offset " +
                         std::to_string(offset);
      break;
    }
    prev_lsn = record.lsn;
    record.payload = body.substr(kBodyPrefixBytes);
    scan.records.push_back(std::move(record));
    offset += kFrameHeaderBytes + body_len;
  }
  return util::ok_status();
}

}  // namespace

util::StatusOr<WalScan> scan_wal(const std::string& path) {
  WalScan scan;
  const util::Status status = scan_into(path, scan);
  if (status.code() == util::StatusCode::kNotFound) return scan;  // no WAL yet
  if (!status.ok()) return status;
  return scan;
}

std::size_t verify_wal_strict(const std::string& path) {
  WalScan scan;
  const util::Status status = scan_into(path, scan);
  if (!status.ok()) throw core::PersistError(status.message());
  if (scan.torn) throw core::PersistError(scan.torn_reason);
  return scan.records.size();
}

}  // namespace leaps::durable
