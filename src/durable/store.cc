#include "durable/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace leaps::durable {

namespace {

constexpr const char* kSnapshotMagic = "LEAPS-SNAPSHOT v1";
// Caps an attacker-controllable count/length before the allocation it sizes.
constexpr std::size_t kMaxBlobBytes = std::size_t{256} << 20;
constexpr std::size_t kMaxWindowEvents = 1u << 20;
constexpr std::size_t kMaxStackFrames = 1u << 16;
constexpr std::size_t kMaxSymbolBytes = 1u << 16;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t raw;
  std::memcpy(&raw, &v, sizeof raw);
  put_u64(out, raw);
}

/// Bounds-checked little-endian cursor over a window payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes_[pos_ + i]);
    }
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    std::memcpy(&v, &raw, sizeof v);
    return true;
  }
  bool str(std::string& v, std::size_t max_len) {
    std::uint32_t len = 0;
    if (!u32(len) || len > max_len || pos_ + len > bytes_.size()) {
      return false;
    }
    v.assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::string detector_bytes(const core::Detector& detector) {
  std::ostringstream os;
  core::save_detector(detector, os, core::PersistVersion::kV3);
  return std::move(os).str();
}

std::shared_ptr<const core::Detector> detector_from_bytes(
    const std::string& bytes) {
  std::istringstream is(bytes);
  return std::make_shared<const core::Detector>(core::load_detector(is));
}

void write_blob(std::ostream& os, const char* kind,
                const std::string& payload) {
  os << kind << ' ' << payload.size() << ' ' << std::hex << std::setw(8)
     << std::setfill('0') << util::crc32c(payload) << std::dec
     << std::setfill(' ') << '\n'
     << payload << '\n';
}

/// Parses everything after the magic line of a snapshot. Throws
/// core::PersistError (with byte offsets for blob damage) on any defect.
struct SnapshotData {
  std::uint64_t lsn = 0;
  AccountingBaseline accounting;
  std::shared_ptr<const core::Detector> detector;
  std::vector<std::shared_ptr<const core::Detector>> quarantined;
  std::vector<DurableWindow> windows;
  std::string drift;  // empty: no DRIFT blob (pre-drift snapshot)
};

std::size_t offset_of(std::istream& is) {
  const std::streampos pos = is.tellg();
  return pos < 0 ? 0 : static_cast<std::size_t>(pos);
}

/// Reads a blob whose header line has already been consumed (the caller
/// peeked it to dispatch on the kind keyword).
std::string read_blob_body(std::istream& is, const std::string& kind,
                           const std::string& line,
                           std::size_t line_offset) {
  std::istringstream header(line);
  std::string got_kind;
  unsigned long long nbytes = 0;
  std::string crc_hex;
  if (!(header >> got_kind >> nbytes >> crc_hex) || got_kind != kind) {
    throw core::PersistError("snapshot: expected " + kind +
                             " header at byte offset " +
                             std::to_string(line_offset) + ", got '" + line +
                             "'");
  }
  if (nbytes > kMaxBlobBytes) {
    throw core::PersistError("snapshot: implausible " + kind + " size at " +
                             "byte offset " + std::to_string(line_offset));
  }
  std::size_t crc_len = 0;
  unsigned long stored_crc = 0;
  try {
    stored_crc = std::stoul(crc_hex, &crc_len, 16);
  } catch (const std::logic_error&) {
    crc_len = 0;
  }
  if (crc_len != crc_hex.size() || crc_hex.empty()) {
    throw core::PersistError("snapshot: bad " + kind +
                             " checksum field at byte offset " +
                             std::to_string(line_offset));
  }
  const std::size_t payload_offset = offset_of(is);
  std::string payload(static_cast<std::size_t>(nbytes), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(nbytes));
  const auto got = static_cast<std::size_t>(is.gcount());
  if (got != nbytes) {
    throw core::PersistError(
        "snapshot: truncated " + kind + " blob: expected " +
        std::to_string(nbytes) + " bytes at byte offset " +
        std::to_string(payload_offset) + ", file ends after " +
        std::to_string(got));
  }
  if (util::crc32c(payload) != static_cast<std::uint32_t>(stored_crc)) {
    throw core::PersistError("snapshot: " + kind +
                             " checksum mismatch at byte offset " +
                             std::to_string(payload_offset));
  }
  if (is.get() != '\n') {
    throw core::PersistError("snapshot: missing newline after " + kind +
                             " blob at byte offset " +
                             std::to_string(offset_of(is)));
  }
  return payload;
}

std::string read_blob(std::istream& is, const std::string& kind) {
  const std::size_t line_offset = offset_of(is);
  std::string line;
  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing " + kind +
                             " header at byte offset " +
                             std::to_string(line_offset));
  }
  return read_blob_body(is, kind, line, line_offset);
}

SnapshotData load_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw core::PersistError("cannot open snapshot: " + path);
  std::string line;
  if (!std::getline(is, line) || line != kSnapshotMagic) {
    throw core::PersistError("bad snapshot magic in " + path + ": '" + line +
                             "'");
  }
  SnapshotData data;
  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing LSN line");
  }
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> data.lsn) || kw != "LSN") {
      throw core::PersistError("snapshot: bad LSN line '" + line + "'");
    }
  }
  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing ACCOUNTING line");
  }
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> data.accounting.ingested >> data.accounting.processed >>
          data.accounting.dropped >> data.accounting.quarantined) ||
        kw != "ACCOUNTING") {
      throw core::PersistError("snapshot: bad ACCOUNTING line '" + line +
                               "'");
    }
  }
  data.detector = detector_from_bytes(read_blob(is, "DETECTOR"));

  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing QUARANTINED line");
  }
  unsigned long long quarantined = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> quarantined) || kw != "QUARANTINED" ||
        quarantined > 4096) {
      throw core::PersistError("snapshot: bad QUARANTINED line '" + line +
                               "'");
    }
  }
  for (unsigned long long i = 0; i < quarantined; ++i) {
    data.quarantined.push_back(detector_from_bytes(read_blob(is, "CAND")));
  }

  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing PENDING line");
  }
  unsigned long long pending = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> pending) || kw != "PENDING" || pending > (1u << 22)) {
      throw core::PersistError("snapshot: bad PENDING line '" + line + "'");
    }
  }
  for (unsigned long long i = 0; i < pending; ++i) {
    const std::string payload = read_blob(is, "WINDOW");
    auto events = decode_window(payload);
    if (!events.ok()) {
      throw core::PersistError("snapshot: undecodable WINDOW blob " +
                               std::to_string(i) + ": " +
                               events.status().message());
    }
    data.windows.push_back(DurableWindow{*std::move(events)});
  }
  // The DRIFT blob is optional (absent when drift is disabled, and from
  // snapshots written before drift existed): peek the next line and
  // dispatch on its keyword.
  std::size_t end_offset = offset_of(is);
  if (!std::getline(is, line)) {
    throw core::PersistError("snapshot truncated: missing END at byte "
                             "offset " +
                             std::to_string(end_offset));
  }
  if (line.rfind("DRIFT ", 0) == 0) {
    data.drift = read_blob_body(is, "DRIFT", line, end_offset);
    end_offset = offset_of(is);
    if (!std::getline(is, line)) {
      throw core::PersistError("snapshot truncated: missing END at byte "
                               "offset " +
                               std::to_string(end_offset));
    }
  }
  if (line != "END") {
    throw core::PersistError("snapshot truncated: missing END at byte "
                             "offset " +
                             std::to_string(end_offset));
  }
  return data;
}

/// Best-effort LSN peek for open()'s counter seeding; 0 when unreadable
/// (recover() does the real validation).
std::uint64_t peek_snapshot_lsn(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  std::string line;
  if (!std::getline(is, line) || line != kSnapshotMagic) return 0;
  if (!std::getline(is, line)) return 0;
  std::istringstream ls(line);
  std::string kw;
  std::uint64_t lsn = 0;
  if (!(ls >> kw >> lsn) || kw != "LSN") return 0;
  return lsn;
}

bool file_exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string encode_window(const trace::PartitionedEvent* events,
                          std::size_t count) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const trace::PartitionedEvent& e = events[i];
    put_u64(out, e.seq);
    put_u32(out, e.tid);
    out.push_back(static_cast<char>(e.type));
    put_u32(out, static_cast<std::uint32_t>(e.app_stack.size()));
    for (const std::uint64_t addr : e.app_stack) put_u64(out, addr);
    put_u32(out, static_cast<std::uint32_t>(e.system_stack.size()));
    for (const trace::StackFrame& f : e.system_stack) {
      put_u64(out, f.address);
      put_u32(out, static_cast<std::uint32_t>(f.module.size()));
      out.append(f.module);
      put_u32(out, static_cast<std::uint32_t>(f.function.size()));
      out.append(f.function);
    }
  }
  return out;
}

util::StatusOr<std::vector<trace::PartitionedEvent>> decode_window(
    std::string_view payload) {
  Cursor c(payload);
  std::uint32_t count = 0;
  if (!c.u32(count) || count > kMaxWindowEvents) {
    return util::corrupt_input("window payload: bad event count");
  }
  std::vector<trace::PartitionedEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    trace::PartitionedEvent e;
    std::uint8_t type = 0;
    std::uint32_t app_n = 0;
    if (!c.u64(e.seq) || !c.u32(e.tid) || !c.u8(type) ||
        type >= trace::kEventTypeCount || !c.u32(app_n) ||
        app_n > kMaxStackFrames) {
      return util::corrupt_input("window payload: bad event " +
                                 std::to_string(i));
    }
    e.type = static_cast<trace::EventType>(type);
    e.app_stack.resize(app_n);
    for (std::uint32_t a = 0; a < app_n; ++a) {
      if (!c.u64(e.app_stack[a])) {
        return util::corrupt_input("window payload: truncated app stack");
      }
    }
    std::uint32_t sys_n = 0;
    if (!c.u32(sys_n) || sys_n > kMaxStackFrames) {
      return util::corrupt_input("window payload: bad system stack count");
    }
    e.system_stack.resize(sys_n);
    for (std::uint32_t s = 0; s < sys_n; ++s) {
      trace::StackFrame& f = e.system_stack[s];
      if (!c.u64(f.address) || !c.str(f.module, kMaxSymbolBytes) ||
          !c.str(f.function, kMaxSymbolBytes)) {
        return util::corrupt_input("window payload: truncated system stack");
      }
    }
    events.push_back(std::move(e));
  }
  if (!c.exhausted()) {
    return util::corrupt_input("window payload: trailing bytes");
  }
  return events;
}

DurableStore::Metrics::Metrics()
    : journal_appends(obs::MetricRegistry::global().counter(
          "leaps_durable_journal_appends_total",
          "records appended to the online-state WAL")),
      journal_bytes(obs::MetricRegistry::global().counter(
          "leaps_durable_journal_bytes_total",
          "payload bytes appended to the online-state WAL")),
      checkpoints(obs::MetricRegistry::global().counter(
          "leaps_durable_checkpoints_total",
          "journal-folding atomic snapshot checkpoints")),
      recoveries(obs::MetricRegistry::global().counter(
          "leaps_durable_recoveries_total",
          "successful snapshot+journal recoveries")),
      torn_truncations(obs::MetricRegistry::global().counter(
          "leaps_durable_torn_tail_truncations_total",
          "journal tails truncated during recovery (crash mid-append)")),
      records_replayed(obs::MetricRegistry::global().counter(
          "leaps_durable_records_replayed_total",
          "journal records replayed during recovery")),
      recovery_duration_us(obs::MetricRegistry::global().gauge(
          "leaps_durable_recovery_duration_us",
          "wall time of the most recent recovery, microseconds")) {}

DurableStore::DurableStore(DurableOptions options)
    : options_(std::move(options)) {}

util::Status DurableStore::open() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (options_.dir.empty()) {
    return util::invalid_argument_error("DurableOptions.dir is empty");
  }
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return util::unavailable("mkdir " + options_.dir + ": " +
                             std::strerror(errno));
  }
  // Seed the LSN counter past everything durable: the snapshot's fold
  // point and any journal records after it.
  std::uint64_t last = peek_snapshot_lsn(snapshot_path());
  auto scan = scan_wal(journal_path());
  if (!scan.ok()) return scan.status();  // foreign magic: not our journal
  if (scan->torn) {
    // Drop the torn tail before the writer opens: the scanner stops at
    // the damage, so anything appended after it could never be recovered.
    if (::truncate(journal_path().c_str(),
                   static_cast<::off_t>(scan->torn_offset)) != 0) {
      return util::unavailable("truncate " + journal_path() + ": " +
                               std::strerror(errno));
    }
    metrics_.torn_truncations.inc();
    // recover() may legitimately run after open(); remember the tail so
    // it still gets reported (but not double-counted) there.
    open_truncated_tail_ = true;
    open_torn_reason_ = scan->torn_reason;
  }
  if (!scan->records.empty()) {
    last = std::max(last, scan->records.back().lsn);
  }
  return wal_.open(journal_path(), last + 1);
}

util::Status DurableStore::journal(WalRecordType type,
                                   std::string_view payload,
                                   std::uint64_t* assigned_lsn) {
  const std::lock_guard<std::mutex> lock(mu_);
  const util::Status status = wal_.append(type, payload, assigned_lsn);
  if (!status.ok()) return status;
  metrics_.journal_appends.inc();
  metrics_.journal_bytes.inc(payload.size());
  ++appends_since_checkpoint_;
  return util::ok_status();
}

std::uint64_t DurableStore::last_lsn() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return wal_.is_open() ? wal_.next_lsn() - 1 : 0;
}

util::Status DurableStore::journal_window(
    const trace::PartitionedEvent* events, std::size_t count) {
  return journal(WalRecordType::kWindow, encode_window(events, count));
}

util::Status DurableStore::journal_retrain(std::uint64_t drain_lsn, bool ok,
                                           std::uint64_t new_samples,
                                           const std::string& detail) {
  std::string payload;
  put_u64(payload, drain_lsn);
  payload.push_back(ok ? 1 : 0);
  put_u64(payload, new_samples);
  put_u32(payload, static_cast<std::uint32_t>(detail.size()));
  payload.append(detail);
  return journal(WalRecordType::kRetrain, payload);
}

util::Status DurableStore::journal_promotion(
    const core::Detector& candidate) {
  return journal(WalRecordType::kPromotion, detector_bytes(candidate));
}

util::Status DurableStore::journal_quarantine(
    const core::Detector& candidate) {
  return journal(WalRecordType::kQuarantine, detector_bytes(candidate));
}

util::Status DurableStore::journal_drift_batch(const DriftSample* samples,
                                               std::size_t count) {
  if (count == 0) return util::ok_status();
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    put_f64(payload, samples[i].value);
    payload.push_back(static_cast<char>(samples[i].label));
  }
  return journal(WalRecordType::kDriftBatch, payload);
}

util::Status DurableStore::journal_drift_trigger(
    std::uint32_t generation, double p_value, std::uint64_t* assigned_lsn) {
  std::string payload;
  put_u32(payload, generation);
  put_f64(payload, p_value);
  return journal(WalRecordType::kDriftTrigger, payload, assigned_lsn);
}

bool DurableStore::should_checkpoint() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return options_.checkpoint_every_appends > 0 &&
         appends_since_checkpoint_ >= options_.checkpoint_every_appends;
}

util::Status DurableStore::write_snapshot(const CheckpointState& state,
                                          std::uint64_t lsn) {
  return util::atomic_write_file(snapshot_path(), [&](std::ostream& os) {
    os << kSnapshotMagic << '\n';
    os << "LSN " << lsn << '\n';
    os << "ACCOUNTING " << state.accounting.ingested << ' '
       << state.accounting.processed << ' ' << state.accounting.dropped
       << ' ' << state.accounting.quarantined << '\n';
    write_blob(os, "DETECTOR", detector_bytes(*state.detector));
    os << "QUARANTINED " << state.quarantined.size() << '\n';
    for (const auto& candidate : state.quarantined) {
      write_blob(os, "CAND", detector_bytes(*candidate));
    }
    os << "PENDING " << state.pending_windows.size() << '\n';
    for (const DurableWindow& window : state.pending_windows) {
      write_blob(os, "WINDOW",
                 encode_window(window.events.data(), window.events.size()));
    }
    if (!state.drift.empty()) write_blob(os, "DRIFT", state.drift);
    os << "END\n";
  });
}

util::Status DurableStore::checkpoint(const CheckpointState& state) {
  if (state.detector == nullptr) {
    return util::invalid_argument_error("checkpoint without a detector");
  }
  // Held across sync→snapshot→truncate: an append slipping in after the
  // fold LSN was taken would be truncated without ever being folded.
  const std::lock_guard<std::mutex> lock(mu_);
  if (!wal_.is_open()) return util::internal_error("store not open");
  // Everything journaled so far folds into this snapshot; records at or
  // below this LSN are skipped on replay.
  const std::uint64_t lsn = wal_.next_lsn() - 1;
  util::Status status = wal_.sync();
  if (!status.ok()) return status;
  status = write_snapshot(state, lsn);
  if (!status.ok()) return status;
  // The snapshot is durable; the journal still holds the folded records.
  // A crash here is exactly what the LSN guard makes harmless.
  LEAPS_FAULT_POINT_STATUS("durable.checkpoint.pre_truncate");
  status = wal_.truncate();
  if (!status.ok()) return status;
  appends_since_checkpoint_ = 0;
  metrics_.checkpoints.inc();
  return util::ok_status();
}

util::StatusOr<RecoveredState> DurableStore::recover() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto start = std::chrono::steady_clock::now();
  RecoveredState out;

  // Pending windows carry the LSN they were journaled (or folded) at, so
  // a retrain record's drain boundary can clear exactly the windows the
  // retrain consumed. Snapshot windows were folded at the snapshot LSN.
  std::vector<std::pair<std::uint64_t, DurableWindow>> pending;

  if (file_exists(snapshot_path())) {
    try {
      SnapshotData snap = load_snapshot(snapshot_path());
      out.snapshot_found = true;
      out.detector = std::move(snap.detector);
      out.quarantined = std::move(snap.quarantined);
      for (DurableWindow& window : snap.windows) {
        pending.emplace_back(snap.lsn, std::move(window));
      }
      out.accounting = snap.accounting;
      out.drift = std::move(snap.drift);
      out.last_lsn = snap.lsn;
    } catch (const core::PersistError& e) {
      return util::corrupt_input(e.what());
    }
  }

  auto scan = scan_wal(journal_path());
  if (!scan.ok()) return scan.status();
  if (scan->torn) {
    out.torn_tail = true;
    out.torn_reason = scan->torn_reason;
    metrics_.torn_truncations.inc();
    // Physically drop the tail so a reopened writer appends after the
    // last good record instead of after garbage.
    if (::truncate(journal_path().c_str(),
                   static_cast<::off_t>(scan->torn_offset)) != 0) {
      return util::unavailable("truncate " + journal_path() + ": " +
                               std::strerror(errno));
    }
  } else if (open_truncated_tail_) {
    // open() already dropped (and counted) a torn tail; report it on the
    // recovery that follows, once.
    out.torn_tail = true;
    out.torn_reason = open_torn_reason_;
    open_truncated_tail_ = false;
  }

  for (WalRecord& record : scan->records) {
    if (record.lsn <= out.last_lsn && out.snapshot_found) {
      ++out.skipped;  // folded into the snapshot already
      continue;
    }
    out.last_lsn = std::max(out.last_lsn, record.lsn);
    switch (record.type) {
      case WalRecordType::kWindow: {
        auto events = decode_window(record.payload);
        if (!events.ok()) {
          return util::corrupt_input("WAL window record (lsn " +
                                     std::to_string(record.lsn) +
                                     "): " + events.status().message());
        }
        pending.emplace_back(record.lsn, DurableWindow{*std::move(events)});
        break;
      }
      case WalRecordType::kRetrain: {
        // The retrain drained every window journaled at or below its
        // boundary into the candidate; those must not be re-observed as
        // still pending. Windows journaled while the retrain was training
        // (boundary < lsn < this record) were not drained — keep them.
        Cursor c(record.payload);
        std::uint64_t boundary = 0;
        if (!c.u64(boundary)) {
          return util::corrupt_input("WAL retrain record (lsn " +
                                     std::to_string(record.lsn) +
                                     "): short payload");
        }
        std::erase_if(pending, [boundary](const auto& p) {
          return p.first <= boundary;
        });
        // The retrain is also the consumption point of any drift trigger
        // that fired before it (the manager consumes before draining).
        out.drift_ops.push_back(
            DriftReplayOp{DriftReplayOp::Kind::kRetrain, 0.0, 0});
        break;
      }
      case WalRecordType::kDriftBatch: {
        Cursor c(record.payload);
        std::uint32_t n = 0;
        if (!c.u32(n) || n > (1u << 20)) {
          return util::corrupt_input("WAL drift batch (lsn " +
                                     std::to_string(record.lsn) +
                                     "): bad sample count");
        }
        for (std::uint32_t i = 0; i < n; ++i) {
          DriftReplayOp op;
          op.kind = DriftReplayOp::Kind::kObserve;
          std::uint8_t label = 0;
          if (!c.f64(op.value) || !c.u8(label)) {
            return util::corrupt_input("WAL drift batch (lsn " +
                                       std::to_string(record.lsn) +
                                       "): truncated sample");
          }
          op.label = static_cast<int>(static_cast<std::int8_t>(label));
          out.drift_ops.push_back(op);
        }
        if (!c.exhausted()) {
          return util::corrupt_input("WAL drift batch (lsn " +
                                     std::to_string(record.lsn) +
                                     "): trailing bytes");
        }
        break;
      }
      case WalRecordType::kDriftTrigger:
        out.drift_ops.push_back(
            DriftReplayOp{DriftReplayOp::Kind::kTrigger, 0.0, 0});
        break;
      case WalRecordType::kPromotion:
        try {
          out.detector = detector_from_bytes(record.payload);
        } catch (const core::PersistError& e) {
          return util::corrupt_input("WAL promotion record (lsn " +
                                     std::to_string(record.lsn) +
                                     "): " + e.what());
        }
        break;
      case WalRecordType::kQuarantine:
        try {
          out.quarantined.push_back(detector_from_bytes(record.payload));
        } catch (const core::PersistError& e) {
          return util::corrupt_input("WAL quarantine record (lsn " +
                                     std::to_string(record.lsn) +
                                     "): " + e.what());
        }
        break;
      default:
        return util::corrupt_input("unknown WAL record type " +
                                   std::to_string(static_cast<int>(
                                       record.type)) +
                                   " at lsn " + std::to_string(record.lsn));
    }
    ++out.replayed;
  }
  out.pending_windows.reserve(pending.size());
  for (auto& [lsn, window] : pending) {
    out.pending_windows.push_back(std::move(window));
  }

  metrics_.records_replayed.inc(out.replayed);
  metrics_.recoveries.inc();
  metrics_.recovery_duration_us.set(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return out;
}

}  // namespace leaps::durable
