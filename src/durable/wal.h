// Write-ahead log for the online-learning subsystem.
//
// Everything the server learns between snapshots — admitted benign
// windows, retrain outcomes, promotions, quarantine entries — is appended
// here *as it happens*, so a kill -9 at any instant loses at most the
// record being written. Checkpoints (durable/store.h) fold the journal
// into an atomic snapshot and truncate it.
//
// On-disk layout (little-endian, append-only):
//
//   LEAPSWAL1\n                                   10-byte magic
//   [u32 body_len][u32 crc32c(body)] body         repeated
//     body = [u8 type][u64 lsn][payload]
//
// Every record carries a monotonically increasing LSN. The snapshot
// records the LSN it folded up to; replay skips records at or below it,
// which is what makes a crash *between* snapshot rename and journal
// truncate harmless — the stale records are simply skipped, never
// double-applied.
//
// Torn-tail policy: the writer lands the 8-byte frame header with its own
// write() before the body (fault point "durable.wal.append.mid" sits
// between them), so a crash mid-append leaves a record with a valid
// header and a short body. The reader detects that — and any checksum or
// framing damage — at an exact byte offset. Recovery truncates the tail
// and keeps every record before it; strict readers (the corrupt-file
// corpus) get a typed core::PersistError instead.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace leaps::durable {

inline constexpr std::string_view kWalMagic = "LEAPSWAL1\n";

enum class WalRecordType : std::uint8_t {
  kWindow = 1,      // admitted benign window (encoded PartitionedEvents)
  kRetrain = 2,     // retrain drain marker: payload leads with the u64
                    // boundary LSN (windows ≤ it were consumed), then the
                    // informational outcome
  kPromotion = 3,   // candidate promoted: payload = v3 detector bytes
  kQuarantine = 4,  // candidate rolled back: payload = v3 detector bytes
  kDriftBatch = 5,  // decision values observed by the drift monitor since
                    // the last flush: [u32 n] n × ([f64 value][i8 label])
  kDriftTrigger = 6,  // drift retrain trigger fired: [u32 generation]
                      // [f64 p_value] (informational; replay re-latches)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kWindow;
  std::uint64_t lsn = 0;
  std::string payload;
};

/// Result of scanning a journal in recovery (truncate-tail) mode.
struct WalScan {
  std::vector<WalRecord> records;  // every record before the damage
  bool torn = false;               // a damaged tail was found
  std::uint64_t torn_offset = 0;   // byte offset where the damage starts
  std::string torn_reason;         // human-readable, includes the offset
};

/// Appends records to `path`, creating it (with magic) when absent. Uses
/// raw unbuffered writes so what append() returns OK for has reached the
/// kernel — a process kill cannot un-write it.
///
/// Not internally synchronized: callers (DurableStore) must serialize
/// append()/sync()/truncate() — a record is two write() calls, and
/// concurrent appends would interleave frames into checksum garbage.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if needed) and seeks to the end. `next_lsn` seeds the
  /// LSN counter; pass 1 + the highest LSN seen by recovery.
  util::Status open(const std::string& path, std::uint64_t next_lsn);

  /// Appends one record, assigning it the next LSN (returned through
  /// `assigned_lsn` when non-null). Fault point "durable.wal.append.mid"
  /// fires after the frame header is on disk, before the body; an injected
  /// `error` there behaves like a failed body write, `throw`/`exit`
  /// simulate a crash (the torn record stays for recovery to truncate).
  ///
  /// A failed write rolls the file back to the pre-append offset: a
  /// partial record mid-file would make every later append unreachable
  /// (scans stop at the damage) while still returning OK. If the rollback
  /// itself fails the writer is poisoned — subsequent appends refuse
  /// rather than silently land records recovery can never read. truncate()
  /// discards the damage and lifts the poisoning.
  util::Status append(WalRecordType type, std::string_view payload,
                      std::uint64_t* assigned_lsn = nullptr);

  /// fsync(2) the journal (checkpoint prologue; appends do not fsync).
  util::Status sync();

  /// Truncates the journal back to the bare magic (checkpoint epilogue).
  /// The LSN counter keeps counting — LSNs never repeat within a store.
  util::Status truncate();

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t appends() const { return appends_; }
  const std::string& path() const { return path_; }
  void close();

 private:
  util::Status rolled_back(util::Status status, ::off_t start);

  int fd_ = -1;
  std::string path_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t appends_ = 0;
  bool failed_ = false;  // torn record on disk that rollback couldn't remove
};

/// Scans the journal at `path` in recovery mode: a damaged tail (short
/// header, short body, checksum mismatch, non-monotonic LSN) ends the scan
/// at that point with `torn` set and the exact byte offset; records before
/// it are returned. A missing file is an empty, untorn scan. A bad magic
/// is kCorruptInput — that is not a torn tail, the file is not ours.
util::StatusOr<WalScan> scan_wal(const std::string& path);

/// Strict variant for corruption drills: any damage — including a torn
/// tail recovery would tolerate — throws core::PersistError naming the
/// byte offset. Returns the record count of a fully intact journal.
std::size_t verify_wal_strict(const std::string& path);

}  // namespace leaps::durable
