#include "sim/scenario.h"

#include <stdexcept>

#include "sim/address_space.h"
#include "sim/profiles.h"
#include "util/check.h"

namespace leaps::sim {

const std::vector<ScenarioSpec>& table1_scenarios() {
  using enum AttackMethod;
  static const std::vector<ScenarioSpec> specs = {
      // --- offline infection (Table I, upper block) ---
      {"winscp_reverse_tcp", "winscp", "reverse_tcp", kOfflineInfection},
      {"winscp_reverse_https", "winscp", "reverse_https", kOfflineInfection},
      {"chrome_reverse_tcp", "chrome", "reverse_tcp", kOfflineInfection},
      {"chrome_reverse_https", "chrome", "reverse_https", kOfflineInfection},
      {"notepad++_reverse_tcp", "notepad++", "reverse_tcp",
       kOfflineInfection},
      {"notepad++_reverse_https", "notepad++", "reverse_https",
       kOfflineInfection},
      {"putty_reverse_tcp", "putty", "reverse_tcp", kOfflineInfection},
      {"putty_reverse_https", "putty", "reverse_https", kOfflineInfection},
      {"vim_reverse_tcp", "vim", "reverse_tcp", kOfflineInfection},
      {"vim_reverse_https", "vim", "reverse_https", kOfflineInfection},
      {"vim_codeinject", "vim", "pwddlg", kOfflineInfection},
      {"notepad++_codeinject", "notepad++", "pwddlg", kOfflineInfection},
      {"putty_codeinject", "putty", "pwddlg", kOfflineInfection},
      // --- online injection (Table I, lower block) ---
      {"putty_reverse_tcp_online", "putty", "reverse_tcp", kOnlineInjection},
      {"putty_reverse_https_online", "putty", "reverse_https",
       kOnlineInjection},
      {"notepad++_reverse_tcp_online", "notepad++", "reverse_tcp",
       kOnlineInjection},
      {"notepad++_reverse_https_online", "notepad++", "reverse_https",
       kOnlineInjection},
      {"vim_reverse_tcp_online", "vim", "reverse_tcp", kOnlineInjection},
      {"vim_reverse_https_online", "vim", "reverse_https", kOnlineInjection},
      {"winscp_reverse_tcp_online", "winscp", "reverse_tcp",
       kOnlineInjection},
      {"winscp_reverse_https_online", "winscp", "reverse_https",
       kOnlineInjection},
  };
  return specs;
}

const ScenarioSpec& find_scenario(std::string_view name) {
  for (const ScenarioSpec& s : table1_scenarios()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown scenario: " + std::string(name));
}

ScenarioLogs generate_scenario(const ScenarioSpec& spec,
                               const SimConfig& config) {
  ScenarioLogs out;
  out.spec = spec;

  util::Rng master(config.seed ^ util::hash_string(spec.name));
  util::Rng build_rng = master.fork(1);

  // The benign application is built once and shared by the benign run and
  // the infected run — the trojaned binary contains the *same* benign code.
  const Program app = build_program(app_spec(spec.app), kAppImageBase,
                                    build_rng);
  // The payload is built once: the implanted copy and the "recompiled as
  // independent malware" copy are the same code at different bases.
  util::Rng payload_rng = master.fork(7);
  Program payload =
      build_program(payload_spec(spec.payload), kAppImageBase, payload_rng);
  if (config.payload_framework_chains) {
    payload.chain_style = ChainStyle::kFramework;
  }

  util::Rng attack_rng = master.fork(2);
  const InfectedProcess infected =
      spec.method == AttackMethod::kOfflineInfection
          ? make_offline_infection(app, payload, attack_rng)
          : make_online_injection(app, payload, attack_rng);

  const LibraryRegistry registry = LibraryRegistry::standard();
  const Executor executor(registry, config.exec);

  out.benign = executor.run_benign(app, config.benign_events, master.fork(3));
  auto mixed = executor.run_infected_with_truth(
      infected, config.mixed_events, master.fork(4));
  out.mixed = std::move(mixed.log);
  out.mixed_truth = std::move(mixed.is_malicious);

  // "We manually extract the malicious payloads and recompile them as
  // independent malware": same code, stand-alone process, default EXE base.
  out.malicious = executor.run_payload_standalone(
      payload, config.malicious_events, master.fork(6));
  return out;
}

ScenarioLogs generate_source_trojan_scenario(std::string_view app,
                                             std::string_view payload,
                                             const SimConfig& config) {
  ScenarioLogs out;
  out.spec.name =
      std::string(app) + "_" + std::string(payload) + "_srctrojan";
  out.spec.app = std::string(app);
  out.spec.payload = std::string(payload);
  out.spec.method = AttackMethod::kOfflineInfection;

  util::Rng master(config.seed ^ util::hash_string(out.spec.name));
  util::Rng build_rng = master.fork(1);
  const Program clean_app =
      build_program(app_spec(app), kAppImageBase, build_rng);
  util::Rng payload_rng = master.fork(7);
  // Compiled from source with the application's toolchain: framework
  // chains, both inside the trojan and in the standalone ground truth.
  ProgramSpec pspec = payload_spec(payload);
  pspec.chain_style = ChainStyle::kFramework;
  const Program payload_prog =
      build_program(pspec, kAppImageBase, payload_rng);

  util::Rng attack_rng = master.fork(2);
  const SourceTrojan trojan =
      make_source_trojan(clean_app, payload_prog, attack_rng);

  const LibraryRegistry registry = LibraryRegistry::standard();
  const Executor executor(registry, config.exec);
  out.benign =
      executor.run_benign(clean_app, config.benign_events, master.fork(3));
  auto mixed = executor.run_source_trojan(trojan, config.mixed_events,
                                          master.fork(4));
  out.mixed = std::move(mixed.log);
  out.mixed_truth = std::move(mixed.is_malicious);
  out.malicious = executor.run_payload_standalone(
      payload_prog, config.malicious_events, master.fork(6));
  return out;
}

SystemCapture generate_system_capture(
    const ScenarioSpec& spec, const SimConfig& config,
    const std::vector<std::string>& background_apps) {
  SystemCapture out;
  util::Rng master(config.seed ^ util::hash_string(spec.name) ^
                   0x5E57E31ULL);

  // The target process: same construction as generate_scenario's mixed log.
  util::Rng build_rng = master.fork(1);
  const Program app = build_program(app_spec(spec.app), kAppImageBase,
                                    build_rng);
  util::Rng payload_rng = master.fork(7);
  const Program payload =
      build_program(payload_spec(spec.payload), kAppImageBase, payload_rng);
  util::Rng attack_rng = master.fork(2);
  const InfectedProcess infected =
      spec.method == AttackMethod::kOfflineInfection
          ? make_offline_infection(app, payload, attack_rng)
          : make_online_injection(app, payload, attack_rng);

  const LibraryRegistry registry = LibraryRegistry::standard();
  const Executor executor(registry, config.exec);
  const auto target_run = executor.run_infected_with_truth(
      infected, config.mixed_events, master.fork(4));
  out.target_truth = target_run.is_malicious;

  // Background processes: clean runs of other applications.
  std::vector<trace::RawLog> process_logs = {target_run.log};
  for (std::size_t b = 0; b < background_apps.size(); ++b) {
    util::Rng bg_build = master.fork(100 + b);
    const Program bg = build_program(app_spec(background_apps[b]),
                                     kAppImageBase, bg_build);
    process_logs.push_back(executor.run_benign(
        bg, config.benign_events / 2, master.fork(200 + b)));
  }

  // Assemble the capture: shared system modules once, per-process images.
  trace::SystemRawLog& capture = out.capture;
  {
    trace::RawLog shared;
    registry.append_records(shared);
    capture.shared_modules = std::move(shared.modules);
    capture.symbols = std::move(shared.symbols);
  }
  out.target_pid = 1000;
  for (std::size_t p = 0; p < process_logs.size(); ++p) {
    const auto pid = static_cast<std::uint32_t>(1000 + p * 4);
    capture.process_names[pid] = process_logs[p].process_name;
    // The process's own image record (its modules minus the shared ones —
    // by construction, the first module is the application image).
    capture.process_modules[pid] = {process_logs[p].modules.front()};
  }

  // Interleave events proportionally to remaining counts (capture order),
  // re-stamping sequence numbers globally.
  util::Rng merge_rng = master.fork(3);
  std::vector<std::size_t> cursor(process_logs.size(), 0);
  std::uint64_t seq = 0;
  while (true) {
    std::vector<double> remaining(process_logs.size(), 0.0);
    double total = 0.0;
    for (std::size_t p = 0; p < process_logs.size(); ++p) {
      remaining[p] = static_cast<double>(process_logs[p].events.size() -
                                         cursor[p]);
      total += remaining[p];
    }
    if (total == 0.0) break;
    const std::size_t p = merge_rng.sample_weighted(remaining);
    trace::SystemRawLog::Entry entry;
    entry.pid = static_cast<std::uint32_t>(1000 + p * 4);
    entry.event = process_logs[p].events[cursor[p]++];
    entry.event.seq = seq++;
    capture.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace leaps::sim
