#include "sim/behavior.h"

#include <array>

#include "util/check.h"

namespace leaps::sim {

using trace::EventType;

std::string_view action_kind_name(ActionKind k) {
  static constexpr std::array<std::string_view, kActionKindCount> kNames = {
      "FileOpen",    "FileRead",     "FileWrite",  "RegRead",
      "RegWrite",    "TcpConnect",   "TcpSend",    "TcpRecv",
      "HttpOpen",    "HttpRequest",  "TlsHandshake", "CryptoOp",
      "UiGetMessage", "UiDialog",    "UiPaint",    "KeyLog",
      "MemAlloc",    "MemProtect",   "ThreadCreate", "ProcessCreate",
      "ProcSnapshot", "ImageLoad",   "TokenQuery", "DnsResolve",
  };
  const auto i = static_cast<std::size_t>(k);
  LEAPS_CHECK(i < kNames.size());
  return kNames[i];
}

namespace {

std::vector<std::vector<ActionVariant>> build_variant_table() {
  std::vector<std::vector<ActionVariant>> t(kActionKindCount);
  auto set = [&t](ActionKind k, std::vector<ActionVariant> vs) {
    t[static_cast<std::size_t>(k)] = std::move(vs);
  };

  set(ActionKind::kFileOpen,
      {{EventType::kFileCreate,
        {{"ntfs.sys", "NtfsFsdCreate"},
         {"fltmgr.sys", "FltpCreate"},
         {"ntoskrnl.exe", "IopParseDevice"},
         {"ntoskrnl.exe", "ObOpenObjectByName"},
         {"ntoskrnl.exe", "NtCreateFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtCreateFile"},
         {"kernelbase.dll", "CreateFileW"},
         {"kernel32.dll", "CreateFileW"}}},
       {EventType::kFileCreate,
        {{"ntfs.sys", "NtfsFsdCreate"},
         {"fltmgr.sys", "FltpCreate"},
         {"ntoskrnl.exe", "IopParseDevice"},
         {"ntoskrnl.exe", "NtCreateFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtCreateFile"},
         {"kernelbase.dll", "CreateFileW"},
         {"msvcrt.dll", "fopen"}}}});

  set(ActionKind::kFileRead,
      {{EventType::kFileRead,
        {{"ntfs.sys", "NtfsFsdRead"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "IopSynchronousServiceTail"},
         {"ntoskrnl.exe", "NtReadFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtReadFile"},
         {"kernelbase.dll", "ReadFile"},
         {"kernel32.dll", "ReadFile"}}},
       {EventType::kFileRead,
        {{"ntfs.sys", "NtfsFsdRead"},
         {"ntfs.sys", "NtfsCommonRead"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "NtReadFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtReadFile"},
         {"kernelbase.dll", "ReadFile"},
         {"msvcrt.dll", "fread"}}},
       {EventType::kFileRead,
        {{"ntoskrnl.exe", "CcCopyRead"},
         {"ntoskrnl.exe", "NtReadFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtReadFile"},
         {"kernelbase.dll", "ReadFile"},
         {"kernel32.dll", "ReadFile"}}},
       // Direct NtReadFile from shellcode: no Win32 façade frames.
       {EventType::kFileRead,
        {{"ntfs.sys", "NtfsCommonRead"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "NtReadFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtReadFile"}},
        ChainStyle::kDirect}});

  set(ActionKind::kFileWrite,
      {{EventType::kFileWrite,
        {{"ntfs.sys", "NtfsFsdWrite"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "NtWriteFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtWriteFile"},
         {"kernelbase.dll", "WriteFile"},
         {"kernel32.dll", "WriteFile"}}},
       {EventType::kFileWrite,
        {{"ntfs.sys", "NtfsFsdWrite"},
         {"ntfs.sys", "NtfsCommonWrite"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "NtWriteFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtWriteFile"},
         {"kernelbase.dll", "WriteFile"},
         {"msvcrt.dll", "fwrite"}}},
       {EventType::kFileWrite,
        {{"ntfs.sys", "NtfsCommonWrite"},
         {"ntoskrnl.exe", "IofCallDriver"},
         {"ntoskrnl.exe", "NtWriteFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtWriteFile"}},
        ChainStyle::kDirect}});

  set(ActionKind::kRegRead,
      {{EventType::kRegistryRead,
        {{"ntoskrnl.exe", "CmQueryValueKey"},
         {"ntoskrnl.exe", "NtQueryValueKey"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtQueryValueKey"},
         {"advapi32.dll", "RegQueryValueExW"}}},
       {EventType::kRegistryRead,
        {{"ntoskrnl.exe", "CmQueryValueKey"},
         {"ntoskrnl.exe", "NtQueryValueKey"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtQueryValueKey"},
         {"advapi32.dll", "RegOpenKeyExW"},
         {"advapi32.dll", "RegQueryValueExW"}}}});

  set(ActionKind::kRegWrite,
      {{EventType::kRegistryWrite,
        {{"ntoskrnl.exe", "CmSetValueKey"},
         {"ntoskrnl.exe", "NtSetValueKey"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtSetValueKey"},
         {"advapi32.dll", "RegSetValueExW"}}}});

  set(ActionKind::kTcpConnect,
      {{EventType::kNetworkConnect,
        {{"tcpip.sys", "TcpCreateAndConnectTcb"},
         {"tcpip.sys", "TcpConnect"},
         {"afd.sys", "AfdConnect"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPConnect"},
         {"ws2_32.dll", "connect"}},
        ChainStyle::kFramework},
       // Position-independent code calls the socket API directly; no
       // Winsock service-provider frames.
       {EventType::kNetworkConnect,
        {{"tcpip.sys", "TcpConnect"},
         {"afd.sys", "AfdDispatchDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"ws2_32.dll", "connect"}},
        ChainStyle::kDirect}});

  set(ActionKind::kTcpSend,
      {{EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdSend"},
         {"afd.sys", "AfdFastIoDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPSend"},
         {"ws2_32.dll", "send"}}},
       {EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdFastIoDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPSend"},
         {"ws2_32.dll", "WSASend"}}},
       {EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdDispatchDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"ws2_32.dll", "send"}},
        ChainStyle::kDirect}});

  set(ActionKind::kTcpRecv,
      {{EventType::kNetworkRecv,
        {{"tcpip.sys", "TcpReceive"},
         {"afd.sys", "AfdReceive"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPRecv"},
         {"ws2_32.dll", "recv"}}},
       {EventType::kNetworkRecv,
        {{"tcpip.sys", "TcpReceive"},
         {"afd.sys", "AfdReceive"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPRecv"},
         {"ws2_32.dll", "WSARecv"},
         {"ws2_32.dll", "select"}}},
       {EventType::kNetworkRecv,
        {{"tcpip.sys", "TcpReceive"},
         {"afd.sys", "AfdDispatchDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"ws2_32.dll", "recv"}},
        ChainStyle::kDirect}});

  set(ActionKind::kHttpOpen,
      {{EventType::kNetworkConnect,
        {{"tcpip.sys", "TcpConnect"},
         {"afd.sys", "AfdConnect"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPConnect"},
         {"ws2_32.dll", "connect"},
         {"wininet.dll", "InternetConnectW"},
         {"wininet.dll", "InternetOpenW"}}}});

  set(ActionKind::kHttpRequest,
      {{EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdSend"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPSend"},
         {"ws2_32.dll", "send"},
         {"wininet.dll", "HttpSendRequestW"},
         {"wininet.dll", "HttpOpenRequestW"}}},
       {EventType::kNetworkRecv,
        {{"tcpip.sys", "TcpReceive"},
         {"afd.sys", "AfdReceive"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPRecv"},
         {"ws2_32.dll", "recv"},
         {"wininet.dll", "InternetReadFile"}}}});

  set(ActionKind::kTlsHandshake,
      {{EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdSend"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPSend"},
         {"ws2_32.dll", "send"},
         {"secur32.dll", "InitializeSecurityContextW"},
         {"wininet.dll", "HttpSendRequestW"}}},
       {EventType::kNetworkSend,
        {{"tcpip.sys", "TcpSendData"},
         {"afd.sys", "AfdSend"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"mswsock.dll", "WSPSend"},
         {"ws2_32.dll", "send"},
         {"secur32.dll", "EncryptMessage"},
         {"secur32.dll", "InitializeSecurityContextW"}}}});

  set(ActionKind::kCryptoOp,
      {{EventType::kSysCallEnter,
        {{"cng.sys", "CngEncrypt"},
         {"cng.sys", "CngDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"bcrypt.dll", "BCryptEncrypt"}}},
       {EventType::kSysCallEnter,
        {{"cng.sys", "CngEncrypt"},
         {"cng.sys", "CngDeviceControl"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"bcrypt.dll", "BCryptHashData"},
         {"crypt32.dll", "CryptProtectData"}}}});

  set(ActionKind::kUiGetMessage,
      {{EventType::kUiMessage,
        {{"win32k.sys", "xxxRealInternalGetMessage"},
         {"win32k.sys", "NtUserGetMessage"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"user32.dll", "NtUserGetMessage"},
         {"user32.dll", "GetMessageW"}}},
       {EventType::kUiMessage,
        {{"win32k.sys", "xxxRealInternalGetMessage"},
         {"win32k.sys", "NtUserPeekMessage"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"user32.dll", "NtUserPeekMessage"},
         {"user32.dll", "PeekMessageW"}}}});

  set(ActionKind::kUiDialog,
      {{EventType::kUiMessage,
        {{"win32k.sys", "NtUserCreateWindowEx"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"user32.dll", "NtUserCreateWindowEx"},
         {"user32.dll", "CreateWindowExW"},
         {"user32.dll", "DialogBoxParamW"}}},
       {EventType::kUiMessage,
        {{"win32k.sys", "NtUserCreateWindowEx"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"user32.dll", "NtUserCreateWindowEx"},
         {"user32.dll", "CreateWindowExW"},
         {"comctl32.dll", "PropertySheetW"}}}});

  set(ActionKind::kUiPaint,
      {{EventType::kUiMessage,
        {{"win32k.sys", "NtGdiBitBlt"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"gdi32.dll", "NtGdiBitBlt"},
         {"gdi32.dll", "BitBlt"}}},
       {EventType::kUiMessage,
        {{"win32k.sys", "NtGdiExtTextOutW"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"gdi32.dll", "NtGdiExtTextOutW"},
         {"gdi32.dll", "TextOutW"}}}});

  set(ActionKind::kKeyLog,
      {{EventType::kUiMessage,
        {{"win32k.sys", "NtUserGetAsyncKeyState"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"user32.dll", "NtUserGetAsyncKeyState"},
         {"user32.dll", "GetAsyncKeyState"}}}});

  set(ActionKind::kMemAlloc,
      {{EventType::kMemAlloc,
        {{"ntoskrnl.exe", "MiAllocateVad"},
         {"ntoskrnl.exe", "NtAllocateVirtualMemory"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtAllocateVirtualMemory"},
         {"kernelbase.dll", "VirtualAlloc"}}},
       {EventType::kMemAlloc,
        {{"ntoskrnl.exe", "MiAllocateVad"},
         {"ntoskrnl.exe", "NtAllocateVirtualMemory"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtAllocateVirtualMemory"},
         {"ntdll.dll", "RtlpAllocateHeapInternal"},
         {"ntdll.dll", "RtlAllocateHeap"},
         {"msvcrt.dll", "malloc"}}}});

  set(ActionKind::kMemProtect,
      {{EventType::kMemProtect,
        {{"ntoskrnl.exe", "MiProtectVirtualMemory"},
         {"ntoskrnl.exe", "NtProtectVirtualMemory"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtProtectVirtualMemory"},
         {"kernelbase.dll", "VirtualProtect"}}}});

  set(ActionKind::kThreadCreate,
      {{EventType::kThreadCreate,
        {{"ntoskrnl.exe", "PspCreateThread"},
         {"ntoskrnl.exe", "NtCreateThreadEx"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtCreateThreadEx"},
         {"kernelbase.dll", "CreateThread"},
         {"kernel32.dll", "CreateThread"}}}});

  set(ActionKind::kProcessCreate,
      {{EventType::kProcessCreate,
        {{"ntoskrnl.exe", "PspInsertProcess"},
         {"ntoskrnl.exe", "NtCreateUserProcess"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtCreateUserProcess"},
         {"kernelbase.dll", "CreateProcessW"},
         {"kernel32.dll", "CreateProcessW"}}}});

  set(ActionKind::kProcSnapshot,
      {{EventType::kSysCallEnter,
        {{"ntoskrnl.exe", "ExpQuerySystemInformation"},
         {"ntoskrnl.exe", "NtQuerySystemInformation"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtQuerySystemInformation"},
         {"kernel32.dll", "CreateToolhelp32Snapshot"}}}});

  set(ActionKind::kImageLoad,
      {{EventType::kImageLoad,
        {{"ntoskrnl.exe", "MmMapViewOfSection"},
         {"ntoskrnl.exe", "NtMapViewOfSection"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtMapViewOfSection"},
         {"ntdll.dll", "LdrLoadDll"},
         {"kernelbase.dll", "LoadLibraryW"}}},
       {EventType::kImageLoad,
        {{"ntoskrnl.exe", "MmMapViewOfSection"},
         {"ntoskrnl.exe", "NtMapViewOfSection"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtMapViewOfSection"},
         {"ntdll.dll", "LdrLoadDll"},
         {"kernel32.dll", "LoadLibraryW"},
         {"kernel32.dll", "GetProcAddress"}}}});

  set(ActionKind::kTokenQuery,
      {{EventType::kSysCallEnter,
        {{"ntoskrnl.exe", "SeQueryInformationToken"},
         {"ntoskrnl.exe", "NtQueryInformationToken"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtQueryInformationToken"},
         {"advapi32.dll", "GetTokenInformation"},
         {"advapi32.dll", "OpenProcessToken"}}}});

  set(ActionKind::kDnsResolve,
      {{EventType::kNetworkSend,
        {{"tcpip.sys", "UdpSendMessages"},
         {"afd.sys", "AfdSend"},
         {"ntoskrnl.exe", "NtDeviceIoControlFile"},
         {"ntoskrnl.exe", "KiSystemServiceCopyEnd"},
         {"ntdll.dll", "NtDeviceIoControlFile"},
         {"ws2_32.dll", "getaddrinfo"},
         {"dnsapi.dll", "DnsQuery_W"}}}});

  for (std::size_t i = 0; i < t.size(); ++i) {
    LEAPS_CHECK_MSG(!t[i].empty(), "action kind has no variants");
  }
  return t;
}

const std::vector<std::vector<ActionVariant>>& variant_table() {
  static const auto table = build_variant_table();
  return table;
}

}  // namespace

const std::vector<ActionVariant>& action_variants(ActionKind k) {
  const auto i = static_cast<std::size_t>(k);
  LEAPS_CHECK(i < kActionKindCount);
  return variant_table()[i];
}

BehaviorTable::BehaviorTable(const LibraryRegistry& registry) {
  resolved_.resize(kActionKindCount);
  by_style_framework_.resize(kActionKindCount);
  by_style_direct_.resize(kActionKindCount);
  for (std::size_t i = 0; i < kActionKindCount; ++i) {
    for (const ActionVariant& v :
         action_variants(static_cast<ActionKind>(i))) {
      ResolvedVariant rv;
      rv.event_type = v.event_type;
      rv.style = v.style;
      rv.frame_addresses.reserve(v.frames.size());
      for (const SystemFrameSpec& f : v.frames) {
        rv.frame_addresses.push_back(registry.address_of(f.lib, f.func));
      }
      (v.style == ChainStyle::kDirect ? by_style_direct_
                                      : by_style_framework_)[i]
          .push_back(rv);
      resolved_[i].push_back(std::move(rv));
    }
  }
}

const std::vector<ResolvedVariant>& BehaviorTable::variants(
    ActionKind k) const {
  const auto i = static_cast<std::size_t>(k);
  LEAPS_CHECK(i < resolved_.size());
  return resolved_[i];
}

const std::vector<ResolvedVariant>& BehaviorTable::variants(
    ActionKind k, ChainStyle style) const {
  const auto i = static_cast<std::size_t>(k);
  LEAPS_CHECK(i < resolved_.size());
  const auto& view = style == ChainStyle::kDirect ? by_style_direct_[i]
                                                  : by_style_framework_[i];
  return view.empty() ? resolved_[i] : view;
}

}  // namespace leaps::sim
