// Simulated x64 address-space layout.
//
// The geometry matters: LEAPS's weight assessment (Algorithm 2) reasons about
// where code lives. The layout mirrors 64-bit Windows conventions:
//  * the application image at the default EXE base,
//  * shared user-mode libraries high in user space,
//  * kernel modules in kernel space,
//  * runtime-injected payloads in ordinary (far) private allocations, and
//  * offline-infection payload sections appended after the benign image —
//    near the benign code but strictly beyond it ("typical attacks choose to
//    allocate extra memory for malicious payloads").
#pragma once

#include <cstdint>

namespace leaps::sim {

// Application image (EXE default base on 64-bit Windows).
inline constexpr std::uint64_t kAppImageBase = 0x0000000140000000ULL;
// Code section starts at this offset within an image.
inline constexpr std::uint64_t kCodeSectionOffset = 0x1000;
// Spacing between synthetic function entry points.
inline constexpr std::uint64_t kFunctionStride = 0x80;

// User-mode shared libraries.
inline constexpr std::uint64_t kUserLibBase = 0x00007FF800000000ULL;
inline constexpr std::uint64_t kUserLibStride = 0x0000000001000000ULL;
inline constexpr std::uint64_t kLibSize = 0x200000;
inline constexpr std::uint64_t kLibFunctionStride = 0x100;

// Kernel modules.
inline constexpr std::uint64_t kKernelBase = 0xFFFFF80000000000ULL;
inline constexpr std::uint64_t kKernelStride = 0x0000000001000000ULL;

// Online injection: VirtualAlloc'd payload region, far from everything.
inline constexpr std::uint64_t kInjectionBase = 0x0000020000000000ULL;

// Offline infection: gap between the benign image end and the appended
// payload section (section alignment padding).
inline constexpr std::uint64_t kInfectionSectionGap = 0x8000;

/// Rounds `v` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace leaps::sim
