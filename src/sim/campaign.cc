#include "sim/campaign.h"

#include <algorithm>
#include <stdexcept>

#include "sim/address_space.h"
#include "sim/profiles.h"
#include "util/check.h"

namespace leaps::sim {

namespace {
using K = ActionKind;
}  // namespace

std::string_view campaign_stage_name(CampaignStage s) {
  switch (s) {
    case CampaignStage::kRecon:
      return "recon";
    case CampaignStage::kFoothold:
      return "foothold";
    case CampaignStage::kLateral:
      return "lateral";
    case CampaignStage::kExfil:
      return "exfil";
    case CampaignStage::kCount:
      break;
  }
  return "?";
}

std::vector<CampaignStageSpec> default_kill_chain() {
  std::vector<CampaignStageSpec> stages(4);
  // Recon: enumerate the host — process snapshots, token/registry reads,
  // DNS lookups for the C2 rendezvous.
  stages[0].stage = CampaignStage::kRecon;
  stages[0].dwell_fraction = 0.20;
  stages[0].intensity = 0.85;
  stages[0].mix = {{K::kProcSnapshot, 0.30}, {K::kTokenQuery, 0.20},
                   {K::kRegRead, 0.22},      {K::kDnsResolve, 0.16},
                   {K::kFileRead, 0.12}};
  // Foothold: drop and arm the implant — file/registry writes, memory
  // carving, a persistence thread.
  stages[1].stage = CampaignStage::kFoothold;
  stages[1].dwell_fraction = 0.20;
  stages[1].intensity = 0.90;
  stages[1].mix = {{K::kFileWrite, 0.28},   {K::kRegWrite, 0.18},
                   {K::kMemAlloc, 0.18},    {K::kMemProtect, 0.14},
                   {K::kThreadCreate, 0.12}, {K::kFileOpen, 0.10}};
  // Lateral movement: pivot traffic and remote execution.
  stages[2].stage = CampaignStage::kLateral;
  stages[2].dwell_fraction = 0.28;
  stages[2].intensity = 0.90;
  stages[2].mix = {{K::kTcpConnect, 0.16}, {K::kTcpSend, 0.26},
                   {K::kTcpRecv, 0.24},    {K::kProcessCreate, 0.16},
                   {K::kTokenQuery, 0.10}, {K::kProcSnapshot, 0.08}};
  // Exfiltration: bulk reads encrypted and pushed out.
  stages[3].stage = CampaignStage::kExfil;
  stages[3].dwell_fraction = 0.32;
  stages[3].intensity = 0.95;
  stages[3].mix = {{K::kFileRead, 0.30},  {K::kCryptoOp, 0.18},
                   {K::kTcpSend, 0.24},   {K::kHttpRequest, 0.16},
                   {K::kFileOpen, 0.12}};
  return stages;
}

const std::vector<CampaignSpec>& campaign_catalog() {
  static const std::vector<CampaignSpec> specs = [] {
    std::vector<CampaignSpec> out;
    const auto chain = default_kill_chain();
    for (const char* app : {"putty", "vim"}) {
      CampaignSpec s;
      s.name = std::string("campaign_") + app + "_apt";
      s.app = app;
      s.lotl = false;
      s.stages = chain;
      out.push_back(std::move(s));
    }
    for (const char* app : {"winscp", "chrome"}) {
      CampaignSpec s;
      s.name = std::string("campaign_") + app + "_lotl";
      s.app = app;
      s.lotl = true;
      s.stages = chain;
      out.push_back(std::move(s));
    }
    return out;
  }();
  return specs;
}

const CampaignSpec& find_campaign(std::string_view name) {
  for (const CampaignSpec& s : campaign_catalog()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown campaign: " + std::string(name));
}

ProgramSpec campaign_stage_payload_spec(const CampaignSpec& spec,
                                        const CampaignStageSpec& stage) {
  ProgramSpec s;
  s.name = spec.name + "_" + std::string(campaign_stage_name(stage.stage));
  s.function_count = 20;
  s.branching = 1.8;
  s.back_edge_fraction = 0.15;
  s.action_fraction = 0.7;
  if (!spec.lotl) {
    s.chain_style = ChainStyle::kDirect;
    s.mix = stage.mix;
    return s;
  }
  // Living off the land: framework chains, and only ActionKinds the host
  // application itself performs — every {Lib, Func} pair the payload can
  // produce is one the benign profile already produces.
  s.chain_style = ChainStyle::kFramework;
  const ProgramSpec host = app_spec(spec.app);
  ActionMix mix;
  for (const auto& [kind, weight] : stage.mix) {
    if (host.mix.count(kind) != 0) mix[kind] = weight;
  }
  s.mix = mix.empty() ? host.mix : mix;
  return s;
}

CampaignLogs generate_campaign(const CampaignSpec& spec,
                               const SimConfig& config) {
  LEAPS_CHECK_MSG(!spec.stages.empty(), "campaign spec without stages");
  CampaignLogs out;
  out.spec = spec;

  util::Rng master(config.seed ^ util::hash_string(spec.name));
  util::Rng build_rng = master.fork(1);
  const Program app =
      build_program(app_spec(spec.app), kAppImageBase, build_rng);

  // Stage payloads are built once at the EXE base (the code as compiled)
  // and relocated to per-stage injection allocations for the mixed run —
  // far private pages with no image record, online-injection style.
  std::vector<Program> built;
  std::vector<Program> injected;
  built.reserve(spec.stages.size());
  injected.reserve(spec.stages.size());
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    util::Rng payload_rng = master.fork(7 + s);
    ProgramSpec pspec = campaign_stage_payload_spec(spec, spec.stages[s]);
    if (config.payload_framework_chains) {
      pspec.chain_style = ChainStyle::kFramework;
    }
    built.push_back(build_program(pspec, kAppImageBase, payload_rng));
    injected.push_back(relocate(
        built.back(), kInjectionBase + static_cast<std::uint64_t>(s) *
                                           0x0000000010000000ULL));
  }

  const LibraryRegistry registry = LibraryRegistry::standard();
  const Executor executor(registry, config.exec);

  out.benign = executor.run_benign(app, config.benign_events, master.fork(3));

  // Dwell windows: sequential slices of the post-activation trace,
  // proportional to the (normalized) dwell fractions.
  const auto activation = static_cast<std::size_t>(
      config.exec.activation_point *
      static_cast<double>(config.mixed_events));
  double total_fraction = 0.0;
  for (const CampaignStageSpec& st : spec.stages) {
    LEAPS_CHECK_MSG(st.dwell_fraction > 0.0, "non-positive dwell fraction");
    total_fraction += st.dwell_fraction;
  }
  std::vector<Executor::CampaignStagePlan> plan(spec.stages.size());
  const double span =
      static_cast<double>(config.mixed_events - activation);
  double cursor = static_cast<double>(activation);
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    const double width =
        span * spec.stages[s].dwell_fraction / total_fraction;
    plan[s].payload = &injected[s];
    plan[s].begin = static_cast<std::size_t>(cursor);
    cursor += width;
    plan[s].end = s + 1 == spec.stages.size()
                      ? config.mixed_events
                      : static_cast<std::size_t>(cursor);
    plan[s].intensity = spec.stages[s].intensity;
    out.dwell.emplace_back(plan[s].begin, plan[s].end);
  }

  auto mixed = executor.run_campaign(app, plan, config.mixed_events,
                                     master.fork(4));
  out.mixed = std::move(mixed.log);
  out.mixed_truth = std::move(mixed.is_malicious);
  out.mixed_stage = std::move(mixed.stage_of_event);

  // Pure-malicious ground truth: the extracted stage implants replayed
  // standalone, stage after stage, in one process context. Their code
  // stays unmapped (no image records), matching how the mixed log's
  // attack events look to the partitioner.
  out.malicious.process_name = spec.name + ".exe";
  registry.append_records(out.malicious);
  const std::size_t share =
      std::max<std::size_t>(1, config.malicious_events / injected.size());
  std::uint64_t seq = 0;
  for (std::size_t s = 0; s < injected.size(); ++s) {
    const std::size_t used = share * s;
    const std::size_t n =
        s + 1 == injected.size()
            ? (config.malicious_events > used
                   ? config.malicious_events - used
                   : share)
            : share;
    trace::RawLog part = executor.run_payload_standalone(
        injected[s], n, master.fork(40 + s));
    for (trace::RawEvent& e : part.events) {
      e.seq = seq++;
      e.tid = static_cast<std::uint32_t>(2 + s);
      out.malicious.events.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace leaps::sim
