// The stack-walking execution engine (the ETW-logger stand-in).
//
// A Walker simulates one thread: it random-walks a Program's call graph,
// maintaining an explicit call stack, and emits a raw event (with a full
// fabricated stack walk) whenever the current function performs one of its
// system interactions. The Executor composes walkers into whole-process
// traces:
//   * run_benign        — the clean application ("benign raw log"),
//   * run_infected      — benign + payload in one process context
//                         ("mixed raw log"; interleaving controlled by
//                         payload_ratio),
//   * run_payload_standalone — the recompiled payload alone ("pure
//                         malicious samples", ground truth for testing).
#pragma once

#include <cstdint>

#include "sim/attack.h"
#include "sim/behavior.h"
#include "sim/library.h"
#include "sim/program.h"
#include "trace/raw_log.h"
#include "util/rng.h"

namespace leaps::sim {

struct ExecConfig {
  std::size_t max_stack_depth = 10;
  /// Relative weights of the walker's three moves when all are available.
  double push_weight = 1.0;
  double pop_weight = 0.8;
  double emit_weight = 1.1;
  /// Mixed logs: overall fraction of post-activation events that come from
  /// the payload thread.
  double payload_ratio = 0.50;
  /// Mixed logs: fraction of the trace after which the payload becomes
  /// active (the implant fires / the injection happens).
  double activation_point = 0.05;
  /// Attack traffic is phase-structured, not i.i.d.: the remote adversary
  /// works the backdoor in sessions. While an attack phase is open, this is
  /// the probability each event comes from the payload thread (the benign
  /// thread keeps running in the background); between phases the payload
  /// idles. Phase lengths are geometric; the benign-phase length is derived
  /// from payload_ratio so the overall mix still matches it.
  double attack_intensity = 0.90;
  double attack_phase_mean_events = 40.0;
  /// Offline infection: probability of taking the detour call when the
  /// walker sits in the detoured benign function.
  double detour_prob = 0.25;
  /// Burstiness: after emitting an event, the same action repeats with this
  /// probability (geometric run lengths — programs read/send/paint in
  /// bursts, which is what gives event windows their texture).
  double burst_continue_prob = 0.60;
  /// Hard cap on a burst's extra repetitions.
  std::size_t burst_cap = 8;
};

class Executor {
 public:
  Executor(const LibraryRegistry& registry, ExecConfig config);

  trace::RawLog run_benign(const Program& app, std::size_t num_events,
                           util::Rng rng) const;

  trace::RawLog run_infected(const InfectedProcess& proc,
                             std::size_t num_events, util::Rng rng) const;

  /// Mixed trace plus per-event ground truth (true = the event was emitted
  /// with payload code on the stack). The truth labels are *not* part of the
  /// log — a real tracer cannot know them; they exist for tests and
  /// diagnostics only.
  struct MixedRun {
    trace::RawLog log;
    std::vector<bool> is_malicious;
  };
  MixedRun run_infected_with_truth(const InfectedProcess& proc,
                                   std::size_t num_events,
                                   util::Rng rng) const;

  /// Mixed trace of a source-level trojan (Section VI-A threat): benign and
  /// payload code live in one recompiled image; the payload runs on its
  /// spawned worker thread after a one-shot detour, in attack sessions like
  /// run_infected.
  MixedRun run_source_trojan(const SourceTrojan& trojan,
                             std::size_t num_events, util::Rng rng) const;

  /// The payload recompiled as an independent executable.
  trace::RawLog run_payload_standalone(const Program& payload,
                                       std::size_t num_events,
                                       util::Rng rng) const;

  /// One stage of a multi-stage campaign: a payload program (already
  /// relocated to its in-process address) active over the half-open event
  /// range [begin, end) — the stage's dwell window — with its own attack
  /// intensity. Ranges must be non-overlapping and ascending.
  struct CampaignStagePlan {
    const Program* payload = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    double intensity = 0.9;
  };

  /// Multi-stage mixed trace: the benign application runs throughout;
  /// each stage's payload thread (tid 2+stage) wakes only inside its dwell
  /// window, in Markov attack sessions like run_infected. `stage_of_event`
  /// is −1 for benign events, else the emitting stage's index.
  struct CampaignRun {
    trace::RawLog log;
    std::vector<bool> is_malicious;
    std::vector<int> stage_of_event;
  };
  CampaignRun run_campaign(const Program& app,
                           const std::vector<CampaignStagePlan>& stages,
                           std::size_t num_events, util::Rng rng) const;

  const ExecConfig& config() const { return config_; }

 private:
  const LibraryRegistry& registry_;
  ExecConfig config_;
  BehaviorTable behavior_;
  std::uint64_t base_thread_init_;   // kernel32!BaseThreadInitThunk
  std::uint64_t user_thread_start_;  // ntdll!RtlUserThreadStart
};

}  // namespace leaps::sim
