#include "sim/library.h"

#include <stdexcept>

#include "sim/address_space.h"
#include "util/check.h"

namespace leaps::sim {

std::uint64_t SystemLibrary::function_address(std::size_t index) const {
  LEAPS_CHECK_MSG(index < functions.size(), "function index out of range");
  return base + kCodeSectionOffset + index * kLibFunctionStride;
}

void LibraryRegistry::add(SystemLibrary lib) {
  const std::size_t slot = libs_.size();
  const std::uint64_t space = lib.is_kernel ? kKernelBase : kUserLibBase;
  const std::uint64_t stride = lib.is_kernel ? kKernelStride : kUserLibStride;
  // Kernel and user libraries are numbered within their own spaces so that
  // the ranges never collide.
  std::size_t rank = 0;
  for (const SystemLibrary& existing : libs_) {
    if (existing.is_kernel == lib.is_kernel) ++rank;
  }
  lib.base = space + rank * stride;
  lib.size = kLibSize;
  LEAPS_CHECK_MSG(kCodeSectionOffset +
                          lib.functions.size() * kLibFunctionStride <=
                      lib.size,
                  "too many functions in " + lib.name);
  for (std::size_t i = 0; i < lib.functions.size(); ++i) {
    addr_index_.emplace(lib.name + "!" + lib.functions[i],
                        lib.base + kCodeSectionOffset +
                            i * kLibFunctionStride);
  }
  libs_.push_back(std::move(lib));
  (void)slot;
}

std::uint64_t LibraryRegistry::address_of(std::string_view lib,
                                          std::string_view func) const {
  const std::string key = std::string(lib) + "!" + std::string(func);
  auto it = addr_index_.find(key);
  if (it == addr_index_.end()) {
    throw std::logic_error("LibraryRegistry: unknown function " + key);
  }
  return it->second;
}

void LibraryRegistry::append_records(trace::RawLog& log) const {
  for (const SystemLibrary& lib : libs_) {
    log.modules.push_back({lib.base, lib.size, lib.name});
    for (std::size_t i = 0; i < lib.functions.size(); ++i) {
      log.symbols.push_back({lib.function_address(i), lib.functions[i]});
    }
  }
}

LibraryRegistry LibraryRegistry::standard() {
  LibraryRegistry r;
  // --- user-mode shared libraries -------------------------------------
  r.add({"ntdll.dll", 0, 0, false,
         {"NtReadFile", "NtWriteFile", "NtCreateFile", "NtOpenKey",
          "NtQueryValueKey", "NtSetValueKey", "NtDeviceIoControlFile",
          "NtAllocateVirtualMemory", "NtProtectVirtualMemory",
          "NtCreateThreadEx", "NtMapViewOfSection", "NtQueryInformationToken",
          "NtQuerySystemInformation", "NtCreateUserProcess", "NtUserGetMessage",
          "NtUserGetAsyncKeyState", "RtlAllocateHeap",
          "RtlpAllocateHeapInternal", "LdrLoadDll", "RtlUserThreadStart",
          "NtClose", "NtWaitForSingleObject", "NtDelayExecution"}});
  r.add({"kernel32.dll", 0, 0, false,
         {"ReadFile", "WriteFile", "CreateFileW", "CreateThread",
          "CreateProcessW", "CreateToolhelp32Snapshot", "LoadLibraryW",
          "GetProcAddress", "BaseThreadInitThunk", "WriteProcessMemory",
          "VirtualAllocEx", "CreateRemoteThread", "Sleep",
          "WaitForSingleObject"}});
  r.add({"kernelbase.dll", 0, 0, false,
         {"ReadFile", "WriteFile", "CreateFileW", "CreateThread",
          "CreateProcessW", "VirtualAlloc", "VirtualProtect", "LoadLibraryW",
          "Sleep", "CloseHandle"}});
  r.add({"user32.dll", 0, 0, false,
         {"GetMessageW", "PeekMessageW", "DispatchMessageW", "CreateWindowExW",
          "DialogBoxParamW", "GetAsyncKeyState", "NtUserGetMessage",
          "NtUserPeekMessage", "NtUserGetAsyncKeyState",
          "NtUserCreateWindowEx", "SendMessageW", "TranslateMessage"}});
  r.add({"gdi32.dll", 0, 0, false,
         {"BitBlt", "NtGdiBitBlt", "TextOutW", "NtGdiExtTextOutW",
          "SelectObject"}});
  r.add({"advapi32.dll", 0, 0, false,
         {"RegOpenKeyExW", "RegQueryValueExW", "RegSetValueExW",
          "RegCloseKey", "GetTokenInformation", "OpenProcessToken",
          "CryptAcquireContextW"}});
  r.add({"ws2_32.dll", 0, 0, false,
         {"socket", "connect", "send", "recv", "WSAStartup", "WSASend",
          "WSARecv", "closesocket", "getaddrinfo", "select"}});
  r.add({"mswsock.dll", 0, 0, false,
         {"WSPConnect", "WSPSend", "WSPRecv", "WSPSocket", "WSPCloseSocket"}});
  r.add({"wininet.dll", 0, 0, false,
         {"InternetOpenW", "InternetConnectW", "InternetOpenUrlW",
          "HttpOpenRequestW", "HttpSendRequestW", "InternetReadFile",
          "InternetCloseHandle"}});
  r.add({"secur32.dll", 0, 0, false,
         {"InitializeSecurityContextW", "AcquireCredentialsHandleW",
          "EncryptMessage", "DecryptMessage"}});
  r.add({"crypt32.dll", 0, 0, false,
         {"CryptProtectData", "CryptUnprotectData", "CertOpenStore",
          "CertFindCertificateInStore"}});
  r.add({"bcrypt.dll", 0, 0, false,
         {"BCryptEncrypt", "BCryptDecrypt", "BCryptGenRandom",
          "BCryptOpenAlgorithmProvider", "BCryptHashData"}});
  r.add({"msvcrt.dll", 0, 0, false,
         {"fread", "fwrite", "fopen", "malloc", "free", "memcpy", "strlen"}});
  r.add({"dnsapi.dll", 0, 0, false, {"DnsQuery_W", "DnsFree"}});
  r.add({"shell32.dll", 0, 0, false,
         {"ShellExecuteW", "SHGetFolderPathW", "SHGetFileInfoW"}});
  r.add({"comctl32.dll", 0, 0, false,
         {"PropertySheetW", "CreatePropertySheetPageW", "InitCommonControlsEx"}});
  // --- kernel modules ---------------------------------------------------
  r.add({"ntoskrnl.exe", 0, 0, true,
         {"KiSystemServiceCopyEnd", "NtReadFile", "NtWriteFile",
          "NtCreateFile", "NtOpenKey", "NtQueryValueKey", "NtSetValueKey",
          "NtDeviceIoControlFile", "NtAllocateVirtualMemory",
          "NtProtectVirtualMemory", "NtCreateThreadEx", "NtMapViewOfSection",
          "NtQueryInformationToken", "NtQuerySystemInformation",
          "NtCreateUserProcess", "IofCallDriver", "IopSynchronousServiceTail",
          "IopParseDevice", "ObOpenObjectByName", "CcCopyRead",
          "CmQueryValueKey", "CmSetValueKey", "MiAllocateVad",
          "MiProtectVirtualMemory", "MmMapViewOfSection", "PspCreateThread",
          "PspInsertProcess", "SeQueryInformationToken",
          "ExpQuerySystemInformation", "ObCloseHandle",
          "KeWaitForSingleObject", "KeDelayExecutionThread"}});
  r.add({"win32k.sys", 0, 0, true,
         {"NtUserGetMessage", "NtUserPeekMessage", "NtUserGetAsyncKeyState",
          "NtUserCreateWindowEx", "NtGdiBitBlt", "NtGdiExtTextOutW",
          "xxxRealInternalGetMessage"}});
  r.add({"ntfs.sys", 0, 0, true,
         {"NtfsFsdRead", "NtfsFsdWrite", "NtfsFsdCreate", "NtfsCommonRead",
          "NtfsCommonWrite"}});
  r.add({"tcpip.sys", 0, 0, true,
         {"TcpConnect", "TcpSendData", "TcpReceive", "TcpCreateAndConnectTcb",
          "UdpSendMessages"}});
  r.add({"afd.sys", 0, 0, true,
         {"AfdConnect", "AfdSend", "AfdReceive", "AfdFastIoDeviceControl",
          "AfdDispatchDeviceControl"}});
  r.add({"fltmgr.sys", 0, 0, true,
         {"FltpCreate", "FltpDispatch", "FltpPerformPreCallbacks"}});
  r.add({"cng.sys", 0, 0, true,
         {"CngEncrypt", "CngDecrypt", "CngDeviceControl"}});
  return r;
}

}  // namespace leaps::sim
