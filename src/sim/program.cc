#include "sim/program.h"

#include <algorithm>

#include "sim/address_space.h"
#include "util/check.h"

namespace leaps::sim {

std::uint64_t Program::function_address(std::size_t index) const {
  LEAPS_CHECK(index < functions.size());
  return functions[index].address;
}

std::uint64_t Program::min_address() const {
  LEAPS_CHECK(!functions.empty());
  return functions.front().address;
}

std::uint64_t Program::max_address() const {
  LEAPS_CHECK(!functions.empty());
  return functions.back().address;
}

Program relocate(const Program& program, std::uint64_t new_base) {
  Program out = program;
  out.image_base = new_base;
  for (std::size_t i = 0; i < out.functions.size(); ++i) {
    const std::uint64_t offset =
        program.functions[i].address - program.image_base;
    out.functions[i].address = new_base + offset;
  }
  return out;
}

Program build_program(const ProgramSpec& spec, std::uint64_t image_base,
                      util::Rng& rng) {
  LEAPS_CHECK_MSG(spec.function_count >= 2, "program needs >= 2 functions");
  LEAPS_CHECK_MSG(!spec.mix.empty(), "program needs an action mix");

  Program p;
  p.name = spec.name;
  p.chain_style = spec.chain_style;
  p.image_base = image_base;
  p.entry = 0;
  p.functions.resize(spec.function_count);
  for (std::size_t i = 0; i < spec.function_count; ++i) {
    p.functions[i].address =
        image_base + kCodeSectionOffset + i * kFunctionStride;
  }
  p.image_size = align_up(
      kCodeSectionOffset + spec.function_count * kFunctionStride, 0x1000);

  // Call graph: every function i>0 gets one incoming edge from an earlier
  // function (guaranteeing reachability from the entry), then extra forward
  // edges until the average out-degree reaches `branching`, then a few back
  // edges for loops.
  const std::size_t n = spec.function_count;
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<std::size_t>(rng.next_below(i));
    p.functions[parent].callees.push_back(i);
  }
  const auto extra_edges = static_cast<std::size_t>(
      std::max(0.0, spec.branching - 1.0) * static_cast<double>(n));
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto from = static_cast<std::size_t>(rng.next_below(n - 1));
    const auto to = from + 1 +
                    static_cast<std::size_t>(rng.next_below(n - 1 - from));
    auto& callees = p.functions[from].callees;
    if (std::find(callees.begin(), callees.end(), to) == callees.end()) {
      callees.push_back(to);
    }
  }
  for (std::size_t i = 2; i < n; ++i) {
    if (rng.next_bool(spec.back_edge_fraction)) {
      const auto to = static_cast<std::size_t>(rng.next_below(i - 1)) + 1;
      auto& callees = p.functions[i].callees;
      if (std::find(callees.begin(), callees.end(), to) == callees.end()) {
        callees.push_back(to);
      }
    }
  }

  // Actions: leaves always act; interior functions act with probability
  // action_fraction. Kinds are drawn from the mix.
  std::vector<ActionKind> kinds;
  std::vector<double> weights;
  for (const auto& [kind, w] : spec.mix) {
    LEAPS_CHECK_MSG(w >= 0.0, "negative action-mix weight");
    if (w > 0.0) {
      kinds.push_back(kind);
      weights.push_back(w);
    }
  }
  LEAPS_CHECK_MSG(!kinds.empty(), "action mix has no positive weights");
  for (auto& fn : p.functions) {
    const bool is_leaf = fn.callees.empty();
    if (is_leaf || rng.next_bool(spec.action_fraction)) {
      fn.actions.push_back(kinds[rng.sample_weighted(weights)]);
      if (rng.next_bool(0.3)) {
        fn.actions.push_back(kinds[rng.sample_weighted(weights)]);
      }
    }
  }
  return p;
}

}  // namespace leaps::sim
