// The 21 evaluation datasets of Table I.
//
// A scenario names one (application, payload, attack-method) combination and
// generates its three raw logs: pure benign, mixed, and pure malicious —
// the training/testing subsets Section V-A describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/attack.h"
#include "sim/executor.h"
#include "trace/raw_log.h"
#include "trace/system_log.h"

namespace leaps::sim {

struct ScenarioSpec {
  std::string name;       // e.g. "putty_reverse_https_online"
  std::string app;        // e.g. "putty"
  std::string payload;    // e.g. "reverse_https"
  AttackMethod method = AttackMethod::kOfflineInfection;
};

/// All 21 scenarios, in Table I order.
const std::vector<ScenarioSpec>& table1_scenarios();

/// Looks a scenario up by name; throws std::invalid_argument if unknown.
const ScenarioSpec& find_scenario(std::string_view name);

struct SimConfig {
  std::size_t benign_events = 12000;
  std::size_t mixed_events = 9000;
  std::size_t malicious_events = 6000;
  std::uint64_t seed = 2015;  // venue year — any fixed value works
  /// Ablation knob: strip the payload's direct-chain style so its stack
  /// walks use the same framework wrappers as the application.
  bool payload_framework_chains = false;
  ExecConfig exec;
};

struct ScenarioLogs {
  ScenarioSpec spec;
  trace::RawLog benign;
  trace::RawLog mixed;
  trace::RawLog malicious;
  /// Ground truth for the mixed log (tests/diagnostics only; see Executor).
  std::vector<bool> mixed_truth;
};

/// Generates the three logs for a scenario. Fully deterministic in
/// (spec.name, config.seed): the program layouts, the infection, and all
/// three walks derive their streams from those two values.
ScenarioLogs generate_scenario(const ScenarioSpec& spec,
                               const SimConfig& config);

/// Source-level trojan dataset (Section VI-A): the payload's source is
/// compiled into the application, shifting every address. The benign log
/// comes from the *clean* build, the mixed log from the recompiled trojan,
/// and the pure-malicious log from the payload built standalone (with the
/// application toolchain's framework chains, like the trojan). The
/// ScenarioSpec name is "<app>_<payload>_srctrojan".
ScenarioLogs generate_source_trojan_scenario(std::string_view app,
                                             std::string_view payload,
                                             const SimConfig& config);

/// A machine-wide capture: the infected target process interleaved with
/// clean background applications, as a real tracer records it. LEAPS's
/// front end then performs application slicing (trace/system_log.h).
struct SystemCapture {
  trace::SystemRawLog capture;
  std::uint32_t target_pid = 0;
  /// Ground truth for the target's events, in the target's slice order.
  std::vector<bool> target_truth;
};

/// Generates the capture for a scenario's *mixed* phase plus clean runs of
/// the named background applications (each contributing
/// config.benign_events / 2 events). Deterministic like generate_scenario.
SystemCapture generate_system_capture(
    const ScenarioSpec& spec, const SimConfig& config,
    const std::vector<std::string>& background_apps);

}  // namespace leaps::sim
