// System-interaction behavior model.
//
// An Action is one class of application↔system interaction (read a file,
// send on a TCP socket, pump a UI message, …). Each action has one or more
// stack-walk *variants*: the chain of system frames, innermost (deepest
// kernel frame) first, that the tracer observes when the action fires, plus
// the system event type the logger records for it. Multiple variants per
// action give the hierarchical-clustering stage realistic diversity: the
// same behavior reaches the kernel through slightly different library
// chains (e.g. fread → ReadFile vs. ReadFile directly).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/library.h"
#include "trace/event.h"

namespace leaps::sim {

enum class ActionKind : std::uint8_t {
  kFileOpen = 0,
  kFileRead,
  kFileWrite,
  kRegRead,
  kRegWrite,
  kTcpConnect,
  kTcpSend,
  kTcpRecv,
  kHttpOpen,
  kHttpRequest,
  kTlsHandshake,
  kCryptoOp,
  kUiGetMessage,
  kUiDialog,
  kUiPaint,
  kKeyLog,
  kMemAlloc,
  kMemProtect,
  kThreadCreate,
  kProcessCreate,
  kProcSnapshot,
  kImageLoad,
  kTokenQuery,
  kDnsResolve,
  kCount,  // sentinel
};

constexpr std::size_t kActionKindCount =
    static_cast<std::size_t>(ActionKind::kCount);

std::string_view action_kind_name(ActionKind k);

/// One system frame in a variant: library name + exported function name.
struct SystemFrameSpec {
  std::string_view lib;
  std::string_view func;
};

/// How code reaches the system service. Applications go through framework
/// wrappers (Winsock service providers, the CRT, kernel32 façades);
/// position-independent payload code links nothing and calls the thinnest
/// API surface directly. This is the system-level behavioral contrast the
/// paper's features rely on ("the system-level behavior of anomalous
/// execution ... is different from the system-level behavior of benign
/// code").
enum class ChainStyle : std::uint8_t {
  kFramework = 0,
  kDirect,
};

/// One way an action can appear in a stack walk.
struct ActionVariant {
  trace::EventType event_type;
  /// System frames, innermost first (deepest kernel frame → outermost
  /// user-mode API wrapper).
  std::vector<SystemFrameSpec> frames;
  ChainStyle style = ChainStyle::kFramework;
};

/// The variant table for an action kind. At least one variant per kind.
const std::vector<ActionVariant>& action_variants(ActionKind k);

/// A variant with frame addresses resolved against a library registry —
/// what the executor actually splices into raw stack walks.
struct ResolvedVariant {
  trace::EventType event_type;
  std::vector<std::uint64_t> frame_addresses;  // innermost first
  ChainStyle style = ChainStyle::kFramework;
};

/// Resolves every variant of every action once up front.
class BehaviorTable {
 public:
  explicit BehaviorTable(const LibraryRegistry& registry);

  /// All variants of an action.
  const std::vector<ResolvedVariant>& variants(ActionKind k) const;

  /// Variants matching the given chain style; falls back to all variants
  /// when the action has none of that style (most actions have only a
  /// framework form).
  const std::vector<ResolvedVariant>& variants(ActionKind k,
                                               ChainStyle style) const;

 private:
  std::vector<std::vector<ResolvedVariant>> resolved_;
  // Per-kind, per-style views (copies; small and built once).
  std::vector<std::vector<ResolvedVariant>> by_style_framework_;
  std::vector<std::vector<ResolvedVariant>> by_style_direct_;
};

}  // namespace leaps::sim
