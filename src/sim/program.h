// Synthetic program model.
//
// A Program is the simulator's stand-in for a compiled application or
// payload: a set of functions at concrete addresses, a ground-truth static
// call graph, and per-function system-interaction actions. The executor
// random-walks this structure to produce event logs whose *inferred* CFG
// (Algorithm 1) is an incomplete sample of this ground truth — the same
// relationship the paper has between real binaries and ETW traces.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/behavior.h"
#include "util/rng.h"

namespace leaps::sim {

struct ProgramFunction {
  std::uint64_t address = 0;
  std::vector<std::size_t> callees;    // indices into Program::functions
  std::vector<ActionKind> actions;     // system interactions this fn performs
};

struct Program {
  std::string name;
  /// How this code reaches system services (see behavior.h); payloads use
  /// direct chains, applications framework chains.
  ChainStyle chain_style = ChainStyle::kFramework;
  std::uint64_t image_base = 0;
  std::uint64_t image_size = 0;  // code extent used for layout decisions
  std::size_t entry = 0;         // index of the entry function
  std::vector<ProgramFunction> functions;

  std::uint64_t function_address(std::size_t index) const;
  /// Lowest / highest function entry address (for layout assertions).
  std::uint64_t min_address() const;
  std::uint64_t max_address() const;
};

/// Relative frequencies of the system interactions a program performs.
using ActionMix = std::map<ActionKind, double>;

/// Shape parameters for generating a synthetic program.
struct ProgramSpec {
  std::string name;
  ChainStyle chain_style = ChainStyle::kFramework;
  std::size_t function_count = 80;
  /// Average out-degree of the call graph (forward edges).
  double branching = 2.2;
  /// Fraction of functions that get a back edge (loops).
  double back_edge_fraction = 0.08;
  /// Fraction of functions performing at least one action
  /// (leaves always do).
  double action_fraction = 0.55;
  ActionMix mix;
};

/// Deterministically generates a Program at `image_base` from the spec.
/// The call graph is guaranteed connected from the entry: function i > 0 is
/// reachable from function 0.
Program build_program(const ProgramSpec& spec, std::uint64_t image_base,
                      util::Rng& rng);

/// The same code at a different base (rebasing / recompilation): structure,
/// call graph and per-function behavior are preserved; only addresses move.
Program relocate(const Program& program, std::uint64_t new_base);

}  // namespace leaps::sim
