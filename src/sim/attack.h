// Attack transforms: turn a benign program + payload spec into an infected
// process model.
//
// Offline infection ("msfencode-style" trojaned binary): the payload is laid
// out as an appended section just past the benign image — near the benign
// code but strictly beyond its address range — and one benign function is
// detoured to the payload entry, after which control returns to the normal
// flow. The application MODULE record grows to cover the new section, so the
// stack partitioner attributes payload frames to the application image
// (they are part of the binary), exactly as on a real trojaned EXE.
//
// Online injection ("payload_inject-style"): the payload lives in a far
// private allocation with no image record; its frames resolve to no module
// and a remote thread runs it concurrently with the benign code.
#pragma once

#include <cstdint>

#include "sim/program.h"

namespace leaps::sim {

enum class AttackMethod : std::uint8_t {
  kOfflineInfection = 0,
  kOnlineInjection,
};

std::string_view attack_method_name(AttackMethod m);

struct InfectedProcess {
  Program app;
  Program payload;  // relocated to its attack-dependent base
  AttackMethod method = AttackMethod::kOfflineInfection;
  /// Offline only: index of the benign function detoured to the payload.
  std::size_t detour_function = 0;
  /// Size to record for the application image (covers the payload section
  /// for offline infection; the original size for online injection).
  std::uint64_t image_record_size = 0;
};

/// `payload` is the payload program as built/compiled (any base); the
/// transform relocates it to its attack-dependent address.
InfectedProcess make_offline_infection(Program app, const Program& payload,
                                       util::Rng& rng);

InfectedProcess make_online_injection(Program app, const Program& payload,
                                      util::Rng& rng);

/// Source-level trojan (the paper's Section VI-A threat): the adversary
/// adds the payload's *source* to the application's code base and
/// recompiles. The payload functions are laid out as a block inside the
/// application image, every address shifts, and — unlike the binary
/// attacks — the payload is compiled with the application's toolchain, so
/// it inherits the framework chain style. Detecting this requires CFG
/// alignment (cfg/alignment.h) rather than exact address comparison.
struct SourceTrojan {
  /// The recompiled trojaned application (one contiguous image).
  Program merged;
  /// Ground truth: merged.functions[i] came from the payload.
  std::vector<bool> is_payload_fn;
  /// Index of the payload's entry inside `merged`.
  std::size_t payload_entry = 0;
  /// Benign function detoured to the payload entry.
  std::size_t detour_function = 0;
};

SourceTrojan make_source_trojan(const Program& app, const Program& payload,
                                util::Rng& rng);

}  // namespace leaps::sim
