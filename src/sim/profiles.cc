#include "sim/profiles.h"

#include <stdexcept>
#include <string>

namespace leaps::sim {

namespace {
using K = ActionKind;
}  // namespace

ProgramSpec app_spec(std::string_view app_name) {
  ProgramSpec s;
  if (app_name == "winscp") {
    s.name = "winscp.exe";
    s.function_count = 120;
    s.branching = 2.3;
    s.mix = {{K::kFileRead, 0.16},   {K::kFileWrite, 0.14},
             {K::kFileOpen, 0.08},   {K::kTcpSend, 0.14},
             {K::kTcpRecv, 0.14},    {K::kTcpConnect, 0.03},
             {K::kUiGetMessage, 0.10}, {K::kUiPaint, 0.05},
             {K::kRegRead, 0.07},    {K::kMemAlloc, 0.05},
             {K::kCryptoOp, 0.04}};
  } else if (app_name == "chrome") {
    s.name = "chrome.exe";
    s.function_count = 200;
    s.branching = 2.8;
    s.mix = {{K::kTcpConnect, 0.05}, {K::kTcpSend, 0.14},
             {K::kTcpRecv, 0.18},    {K::kDnsResolve, 0.04},
             {K::kUiPaint, 0.14},    {K::kUiGetMessage, 0.10},
             {K::kFileRead, 0.08},   {K::kFileWrite, 0.05},
             {K::kMemAlloc, 0.09},   {K::kImageLoad, 0.03},
             {K::kThreadCreate, 0.03}, {K::kCryptoOp, 0.05},
             {K::kRegRead, 0.02}};
  } else if (app_name == "notepad++") {
    s.name = "notepad++.exe";
    s.function_count = 100;
    s.branching = 2.1;
    s.mix = {{K::kFileRead, 0.20},  {K::kFileWrite, 0.15},
             {K::kFileOpen, 0.10},  {K::kUiGetMessage, 0.20},
             {K::kUiPaint, 0.15},   {K::kRegRead, 0.09},
             {K::kMemAlloc, 0.06},  {K::kImageLoad, 0.03},
             {K::kUiDialog, 0.02}};
  } else if (app_name == "putty") {
    s.name = "putty.exe";
    s.function_count = 90;
    s.branching = 2.2;
    s.mix = {{K::kTcpConnect, 0.04}, {K::kTcpSend, 0.20},
             {K::kTcpRecv, 0.24},    {K::kUiGetMessage, 0.14},
             {K::kUiPaint, 0.09},    {K::kFileRead, 0.04},
             {K::kRegRead, 0.09},    {K::kRegWrite, 0.02},
             {K::kMemAlloc, 0.05},   {K::kCryptoOp, 0.09}};
  } else if (app_name == "vim") {
    s.name = "vim.exe";
    s.function_count = 110;
    s.branching = 2.0;
    s.mix = {{K::kFileRead, 0.26},  {K::kFileWrite, 0.20},
             {K::kFileOpen, 0.10},  {K::kUiGetMessage, 0.12},
             {K::kUiPaint, 0.08},   {K::kRegRead, 0.05},
             {K::kMemAlloc, 0.12},  {K::kTokenQuery, 0.02},
             {K::kImageLoad, 0.02}};
  } else {
    throw std::invalid_argument("unknown application: " +
                                std::string(app_name));
  }
  return s;
}

ProgramSpec payload_spec(std::string_view payload_name) {
  ProgramSpec s;
  // Payloads are small, tight loops — shellcode-sized programs that call
  // the thinnest API surface directly (no framework wrapper frames).
  s.chain_style = ChainStyle::kDirect;
  s.function_count = 24;
  s.branching = 1.8;
  s.back_edge_fraction = 0.15;
  s.action_fraction = 0.7;
  if (payload_name == "reverse_tcp") {
    s.name = "reverse_tcp";
    s.mix = {{K::kTcpConnect, 0.07}, {K::kTcpSend, 0.24},
             {K::kTcpRecv, 0.24},    {K::kProcSnapshot, 0.08},
             {K::kKeyLog, 0.10},     {K::kProcessCreate, 0.06},
             {K::kFileRead, 0.06},   {K::kMemAlloc, 0.06},
             {K::kMemProtect, 0.04}, {K::kThreadCreate, 0.03},
             {K::kTokenQuery, 0.02}};
  } else if (payload_name == "reverse_https") {
    s.name = "reverse_https";
    s.mix = {{K::kHttpOpen, 0.07},   {K::kHttpRequest, 0.28},
             {K::kTlsHandshake, 0.12}, {K::kCryptoOp, 0.12},
             {K::kTcpRecv, 0.08},    {K::kProcSnapshot, 0.06},
             {K::kKeyLog, 0.06},     {K::kProcessCreate, 0.04},
             {K::kMemAlloc, 0.06},   {K::kMemProtect, 0.04},
             {K::kImageLoad, 0.03},  {K::kDnsResolve, 0.04}};
  } else if (payload_name == "pwddlg") {
    s.name = "pwddlg";
    s.function_count = 16;
    s.mix = {{K::kUiDialog, 0.34},   {K::kUiGetMessage, 0.24},
             {K::kUiPaint, 0.10},    {K::kRegRead, 0.10},
             {K::kRegWrite, 0.05},   {K::kFileRead, 0.05},
             {K::kMemAlloc, 0.05},   {K::kTokenQuery, 0.07}};
  } else {
    throw std::invalid_argument("unknown payload: " +
                                std::string(payload_name));
  }
  return s;
}

std::vector<std::string_view> known_apps() {
  return {"winscp", "chrome", "notepad++", "putty", "vim"};
}

std::vector<std::string_view> known_payloads() {
  return {"reverse_tcp", "reverse_https", "pwddlg"};
}

}  // namespace leaps::sim
