#include "sim/attack.h"

#include "sim/address_space.h"
#include "util/check.h"

namespace leaps::sim {

std::string_view attack_method_name(AttackMethod m) {
  switch (m) {
    case AttackMethod::kOfflineInfection:
      return "Offline Infection";
    case AttackMethod::kOnlineInjection:
      return "Online Injection";
  }
  return "Unknown";
}

namespace {

/// Picks a non-entry benign function that has callees (a plausible place to
/// splice a call) as the detour site.
std::size_t pick_detour_site(const Program& app, util::Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto i =
        1 + static_cast<std::size_t>(rng.next_below(app.functions.size() - 1));
    if (!app.functions[i].callees.empty()) return i;
  }
  return 1;  // degenerate graphs: any non-entry function works
}

}  // namespace

InfectedProcess make_offline_infection(Program app, const Program& payload,
                                       util::Rng& rng) {
  LEAPS_CHECK(!app.functions.empty());
  InfectedProcess out;
  out.method = AttackMethod::kOfflineInfection;
  const std::uint64_t payload_base =
      app.image_base + align_up(app.image_size, 0x1000) + kInfectionSectionGap;
  out.payload = relocate(payload, payload_base);
  out.image_record_size =
      (payload_base + out.payload.image_size) - app.image_base;
  out.detour_function = pick_detour_site(app, rng);
  out.app = std::move(app);
  return out;
}

SourceTrojan make_source_trojan(const Program& app, const Program& payload,
                                util::Rng& rng) {
  LEAPS_CHECK(!app.functions.empty());
  LEAPS_CHECK(!payload.functions.empty());
  SourceTrojan out;
  const std::size_t na = app.functions.size();
  const std::size_t np = payload.functions.size();

  // Insert the payload block at a random position after the entry; link
  // order changes, relative order of benign functions does not.
  const auto insert_at =
      1 + static_cast<std::size_t>(rng.next_below(na));
  const auto remap_app = [insert_at, np](std::size_t i) {
    return i < insert_at ? i : i + np;
  };
  const auto remap_payload = [insert_at](std::size_t j) {
    return insert_at + j;
  };

  Program& merged = out.merged;
  merged.name = app.name;
  // Compiled with the application's toolchain: framework chains.
  merged.chain_style = ChainStyle::kFramework;
  merged.image_base = app.image_base;
  merged.entry = remap_app(app.entry);
  merged.functions.resize(na + np);
  out.is_payload_fn.assign(na + np, false);
  for (std::size_t i = 0; i < na; ++i) {
    ProgramFunction f;
    f.actions = app.functions[i].actions;
    for (const std::size_t c : app.functions[i].callees) {
      f.callees.push_back(remap_app(c));
    }
    merged.functions[remap_app(i)] = std::move(f);
  }
  for (std::size_t j = 0; j < np; ++j) {
    ProgramFunction f;
    f.actions = payload.functions[j].actions;
    for (const std::size_t c : payload.functions[j].callees) {
      f.callees.push_back(remap_payload(c));
    }
    merged.functions[remap_payload(j)] = std::move(f);
    out.is_payload_fn[remap_payload(j)] = true;
  }
  // Fresh contiguous layout: every address shifts relative to the clean
  // build (this is exactly what breaks exact-address weight assessment).
  for (std::size_t i = 0; i < merged.functions.size(); ++i) {
    merged.functions[i].address =
        merged.image_base + kCodeSectionOffset + i * kFunctionStride;
  }
  merged.image_size = align_up(
      kCodeSectionOffset + merged.functions.size() * kFunctionStride,
      0x1000);

  out.payload_entry = remap_payload(payload.entry);
  // Detour site: a benign function with callees (searched in merged space).
  out.detour_function = merged.entry;
  for (int attempt = 0; attempt < 128; ++attempt) {
    const auto i = static_cast<std::size_t>(
        rng.next_below(merged.functions.size()));
    if (!out.is_payload_fn[i] && i != merged.entry &&
        !merged.functions[i].callees.empty()) {
      out.detour_function = i;
      break;
    }
  }
  return out;
}

InfectedProcess make_online_injection(Program app, const Program& payload,
                                      util::Rng& rng) {
  LEAPS_CHECK(!app.functions.empty());
  (void)rng;
  InfectedProcess out;
  out.method = AttackMethod::kOnlineInjection;
  out.payload = relocate(payload, kInjectionBase);
  out.image_record_size = app.image_size;
  out.detour_function = 0;  // unused for online injection
  out.app = std::move(app);
  return out;
}

}  // namespace leaps::sim
