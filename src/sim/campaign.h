// Multi-stage APT campaign scenarios (ROADMAP scenario-diversity item;
// modeled on the cascade APT-attribution setting of arxiv 2410.22602).
//
// A campaign sequences attack behavior through the classic kill-chain
// stages — recon → foothold → lateral movement → exfiltration — with a
// per-stage dwell window (the fraction of the trace the stage occupies)
// and a per-stage action mix. Each stage runs as its own injected payload
// thread inside the benign host process; between dwell windows the
// adversary is silent.
//
// Two payload styles:
//  * kDirect ("apt") — stage payloads are shellcode-style programs with
//    direct system-call chains, like the Table-I payloads.
//  * living-off-the-land ("lotl") — the hardest camouflage: stage payloads
//    are generated *from the host profile itself*. They use framework
//    chains and only those ActionKinds the host application's own mix
//    contains, so every {Lib, Func} pair they touch is one the benign
//    process already uses; only event ordering/density separates them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/executor.h"
#include "sim/program.h"
#include "sim/scenario.h"
#include "trace/raw_log.h"

namespace leaps::sim {

enum class CampaignStage : std::uint8_t {
  kRecon = 0,
  kFoothold,
  kLateral,
  kExfil,
  kCount,  // sentinel
};

constexpr std::size_t kCampaignStageCount =
    static_cast<std::size_t>(CampaignStage::kCount);

std::string_view campaign_stage_name(CampaignStage s);

/// One stage of a campaign spec.
struct CampaignStageSpec {
  CampaignStage stage = CampaignStage::kRecon;
  /// Fraction of the post-activation trace this stage's dwell window
  /// occupies (fractions are normalized over the whole campaign).
  double dwell_fraction = 0.25;
  /// Attack intensity inside the dwell window (see ExecConfig).
  double intensity = 0.9;
  /// The stage payload's system-interaction mix. For LotL campaigns this
  /// is intersected with the host profile's mix before use.
  ActionMix mix;
};

struct CampaignSpec {
  std::string name;  // e.g. "campaign_putty_apt"
  std::string app;   // host application profile
  /// Living-off-the-land: stage payloads restricted to the host's own
  /// ActionKinds and compiled with framework chains.
  bool lotl = false;
  std::vector<CampaignStageSpec> stages;
};

/// The canned campaign catalog (campaign_* dataset names).
const std::vector<CampaignSpec>& campaign_catalog();

/// Looks a campaign up by name; throws std::invalid_argument if unknown.
const CampaignSpec& find_campaign(std::string_view name);

/// The default kill-chain stage specs (recon/foothold/lateral/exfil with
/// their canonical action mixes) — the building blocks of the catalog.
std::vector<CampaignStageSpec> default_kill_chain();

/// The stage payload's ProgramSpec: a direct-chain implant for APT
/// campaigns, or — when `host` is a LotL campaign's host profile — a
/// framework-chain program whose mix is the renormalized intersection of
/// the stage mix with the host's mix (falling back to the host mix when
/// the intersection is empty, so the payload never calls anything the
/// host would not).
ProgramSpec campaign_stage_payload_spec(const CampaignSpec& spec,
                                        const CampaignStageSpec& stage);

struct CampaignLogs {
  CampaignSpec spec;
  trace::RawLog benign;
  trace::RawLog mixed;
  trace::RawLog malicious;
  /// Ground truth for the mixed log (tests/diagnostics only).
  std::vector<bool> mixed_truth;
  /// Per mixed event: −1 benign, else the emitting stage's index.
  std::vector<int> mixed_stage;
  /// Dwell windows actually used, one [begin, end) per stage.
  std::vector<std::pair<std::size_t, std::size_t>> dwell;
};

/// Generates the campaign's three logs. Fully deterministic in
/// (spec.name, config.seed), same discipline as generate_scenario.
CampaignLogs generate_campaign(const CampaignSpec& spec,
                               const SimConfig& config);

}  // namespace leaps::sim
