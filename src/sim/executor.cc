#include "sim/executor.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "util/check.h"

namespace leaps::sim {

namespace {

/// One simulated thread of execution. Frames may span two programs (the
/// offline-infection detour pushes payload frames on top of benign ones).
class Walker {
 public:
  struct FrameRef {
    const Program* prog;
    std::size_t fn;
  };

  struct Detour {
    std::size_t app_function;  // detoured function in the root program
    const Program* target_prog;
    std::size_t target_fn;
    double probability;
  };

  Walker(const Program* root, const BehaviorTable* behavior,
         const ExecConfig* config, std::uint32_t tid,
         std::vector<std::uint64_t> base_frames, util::Rng rng)
      : behavior_(behavior),
        config_(config),
        tid_(tid),
        base_frames_(std::move(base_frames)),
        rng_(rng),
        root_(root) {
    stack_.push_back({root, root->entry});
  }

  void set_detour(Detour d) { detour_ = d; }

  /// Re-roots the walk at `fn` (a thread started at an arbitrary entry).
  void jump_to(std::size_t fn) {
    stack_.clear();
    stack_.push_back({root_, fn});
  }

  /// True if any live frame belongs to `prog` (queried right after
  /// next_event to attribute the event).
  bool stack_contains(const Program* prog) const {
    return std::any_of(stack_.begin(), stack_.end(),
                       [prog](const FrameRef& f) { return f.prog == prog; });
  }

  /// True if any live frame's function index satisfies `mask` (used for
  /// source trojans, where benign and payload code share one program).
  bool stack_matches(const std::vector<bool>& mask) const {
    return std::any_of(stack_.begin(), stack_.end(),
                       [&mask](const FrameRef& f) { return mask[f.fn]; });
  }

  /// Steps the walk until an event fires; returns it (seq left to caller).
  trace::RawEvent next_event() {
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      return burst_event_;
    }
    // The walk always reaches a function with actions: leaves always have
    // actions (see build_program) and pops/pushes keep the walk moving. The
    // iteration bound is a safety net against malformed programs.
    for (int step = 0; step < 100000; ++step) {
      if (auto event = try_step()) return *std::move(event);
    }
    throw std::logic_error("Walker: no event after 100000 steps in " +
                           stack_.front().prog->name);
  }

 private:
  std::optional<trace::RawEvent> try_step() {
    const FrameRef frame = stack_.back();
    const ProgramFunction& fn = frame.prog->functions[frame.fn];

    // Offline-infection detour: hijack control flow into the payload. The
    // implant runs its setup *once* (spawning the persistent backdoor
    // thread) and then "the trojaned program returns back to the normal
    // control flow of the benign application" — so the detour disarms after
    // the first excursion.
    const bool in_detour_target =
        detour_.has_value() &&
        std::any_of(stack_.begin(), stack_.end(), [this](const FrameRef& f) {
          return f.prog == detour_->target_prog &&
                 f.fn == detour_->target_fn;
        });
    if (detour_.has_value() && !in_detour_target &&
        frame.fn == detour_->app_function &&
        stack_.size() < config_->max_stack_depth &&
        rng_.next_bool(detour_->probability)) {
      stack_.push_back({detour_->target_prog, detour_->target_fn});
      detour_.reset();
      return std::nullopt;
    }

    const bool can_push =
        !fn.callees.empty() && stack_.size() < config_->max_stack_depth;
    const bool can_pop = stack_.size() > 1;
    const bool can_emit = !fn.actions.empty();

    double wp = can_push ? config_->push_weight : 0.0;
    double wo = can_pop ? config_->pop_weight : 0.0;
    double we = can_emit ? config_->emit_weight : 0.0;
    if (wp + wo + we == 0.0) {
      // Isolated entry function with no actions: restart the walk.
      stack_.resize(1);
      stack_[0].fn = stack_[0].prog->entry;
      return std::nullopt;
    }
    const double r = rng_.next_double() * (wp + wo + we);
    if (r < wp) {
      const auto idx =
          static_cast<std::size_t>(rng_.next_below(fn.callees.size()));
      stack_.push_back({frame.prog, fn.callees[idx]});
      return std::nullopt;
    }
    if (r < wp + wo) {
      stack_.pop_back();
      return std::nullopt;
    }
    return emit(fn, frame.prog->chain_style);
  }

  trace::RawEvent emit(const ProgramFunction& fn, ChainStyle style) {
    const auto action_idx =
        static_cast<std::size_t>(rng_.next_below(fn.actions.size()));
    const auto& variants =
        behavior_->variants(fn.actions[action_idx], style);
    const auto variant_idx =
        static_cast<std::size_t>(rng_.next_below(variants.size()));
    const ResolvedVariant& v = variants[variant_idx];

    trace::RawEvent e;
    e.tid = tid_;
    e.type = v.event_type;
    // Innermost first: system frames, then app frames (innermost app frame =
    // deepest call), then the thread bootstrap frames.
    e.stack = v.frame_addresses;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      e.stack.push_back(it->prog->functions[it->fn].address);
    }
    e.stack.insert(e.stack.end(), base_frames_.begin(), base_frames_.end());

    // Geometric burst: the same interaction repeats (a read loop, a paint
    // storm, a send of a large buffer) with an identical stack walk.
    burst_remaining_ = 0;
    while (burst_remaining_ < config_->burst_cap &&
           rng_.next_bool(config_->burst_continue_prob)) {
      ++burst_remaining_;
    }
    if (burst_remaining_ > 0) burst_event_ = e;
    return e;
  }

  const BehaviorTable* behavior_;
  const ExecConfig* config_;
  std::uint32_t tid_;
  std::vector<std::uint64_t> base_frames_;
  util::Rng rng_;
  const Program* root_;
  std::vector<FrameRef> stack_;
  std::optional<Detour> detour_;
  trace::RawEvent burst_event_;
  std::size_t burst_remaining_ = 0;
};

}  // namespace

Executor::Executor(const LibraryRegistry& registry, ExecConfig config)
    : registry_(registry),
      config_(config),
      behavior_(registry),
      base_thread_init_(
          registry.address_of("kernel32.dll", "BaseThreadInitThunk")),
      user_thread_start_(
          registry.address_of("ntdll.dll", "RtlUserThreadStart")) {
  LEAPS_CHECK_MSG(config_.max_stack_depth >= 3, "max_stack_depth too small");
  LEAPS_CHECK_MSG(config_.payload_ratio > 0.0 && config_.payload_ratio < 1.0,
                  "payload_ratio must be in (0,1)");
}

trace::RawLog Executor::run_benign(const Program& app, std::size_t num_events,
                                   util::Rng rng) const {
  trace::RawLog log;
  log.process_name = app.name;
  log.modules.push_back({app.image_base, app.image_size, app.name});
  registry_.append_records(log);

  Walker walker(&app, &behavior_, &config_, /*tid=*/1,
                {base_thread_init_, user_thread_start_}, rng.fork(1));
  log.events.reserve(num_events);
  for (std::size_t seq = 0; seq < num_events; ++seq) {
    trace::RawEvent e = walker.next_event();
    e.seq = seq;
    log.events.push_back(std::move(e));
  }
  return log;
}

trace::RawLog Executor::run_infected(const InfectedProcess& proc,
                                     std::size_t num_events,
                                     util::Rng rng) const {
  return run_infected_with_truth(proc, num_events, rng).log;
}

Executor::MixedRun Executor::run_infected_with_truth(
    const InfectedProcess& proc, std::size_t num_events, util::Rng rng) const {
  MixedRun out;
  trace::RawLog& log = out.log;
  log.process_name = proc.app.name;
  log.modules.push_back(
      {proc.app.image_base, proc.image_record_size, proc.app.name});
  registry_.append_records(log);

  Walker app_walker(&proc.app, &behavior_, &config_, /*tid=*/1,
                    {base_thread_init_, user_thread_start_}, rng.fork(1));
  if (proc.method == AttackMethod::kOfflineInfection) {
    app_walker.set_detour({proc.detour_function, &proc.payload,
                           proc.payload.entry, config_.detour_prob});
  }
  // The persistent backdoor thread: started by the implant (offline) or by
  // the remote CreateRemoteThread (online). Remote threads begin at
  // RtlUserThreadStart directly.
  Walker payload_walker(&proc.payload, &behavior_, &config_, /*tid=*/2,
                        {user_thread_start_}, rng.fork(2));

  const auto activation = static_cast<std::size_t>(
      config_.activation_point * static_cast<double>(num_events));

  // Markov phase switching: attack sessions alternate with quiet periods.
  // With attack fraction f = payload_ratio / attack_intensity, the expected
  // benign-phase length that yields that duty cycle is
  // attack_mean * (1 - f) / f.
  const double f_attack =
      std::min(0.95, config_.payload_ratio / config_.attack_intensity);
  const double attack_mean = std::max(1.0, config_.attack_phase_mean_events);
  const double benign_mean =
      std::max(1.0, attack_mean * (1.0 - f_attack) / f_attack);
  const double p_leave_attack = 1.0 / attack_mean;
  const double p_enter_attack = 1.0 / benign_mean;
  bool in_attack = false;

  log.events.reserve(num_events);
  out.is_malicious.reserve(num_events);
  for (std::size_t seq = 0; seq < num_events; ++seq) {
    if (seq >= activation) {
      if (in_attack) {
        if (rng.next_bool(p_leave_attack)) in_attack = false;
      } else {
        if (rng.next_bool(p_enter_attack)) in_attack = true;
      }
    }
    const bool from_payload =
        seq >= activation && in_attack &&
        rng.next_bool(config_.attack_intensity);
    Walker& walker = from_payload ? payload_walker : app_walker;
    trace::RawEvent e = walker.next_event();
    e.seq = seq;
    log.events.push_back(std::move(e));
    // Detour excursions make some tid-1 events malicious too.
    out.is_malicious.push_back(from_payload ||
                               walker.stack_contains(&proc.payload));
  }
  return out;
}

Executor::MixedRun Executor::run_source_trojan(const SourceTrojan& trojan,
                                               std::size_t num_events,
                                               util::Rng rng) const {
  MixedRun out;
  trace::RawLog& log = out.log;
  log.process_name = trojan.merged.name;
  log.modules.push_back(
      {trojan.merged.image_base, trojan.merged.image_size,
       trojan.merged.name});
  registry_.append_records(log);

  Walker app_walker(&trojan.merged, &behavior_, &config_, /*tid=*/1,
                    {base_thread_init_, user_thread_start_}, rng.fork(1));
  app_walker.set_detour({trojan.detour_function, &trojan.merged,
                         trojan.payload_entry, config_.detour_prob});
  Walker payload_walker(&trojan.merged, &behavior_, &config_, /*tid=*/2,
                        {user_thread_start_}, rng.fork(2));
  payload_walker.jump_to(trojan.payload_entry);

  const auto activation = static_cast<std::size_t>(
      config_.activation_point * static_cast<double>(num_events));
  const double f_attack =
      std::min(0.95, config_.payload_ratio / config_.attack_intensity);
  const double attack_mean = std::max(1.0, config_.attack_phase_mean_events);
  const double benign_mean =
      std::max(1.0, attack_mean * (1.0 - f_attack) / f_attack);
  bool in_attack = false;

  log.events.reserve(num_events);
  out.is_malicious.reserve(num_events);
  for (std::size_t seq = 0; seq < num_events; ++seq) {
    if (seq >= activation) {
      if (in_attack) {
        if (rng.next_bool(1.0 / attack_mean)) in_attack = false;
      } else {
        if (rng.next_bool(1.0 / benign_mean)) in_attack = true;
      }
    }
    const bool from_payload = seq >= activation && in_attack &&
                              rng.next_bool(config_.attack_intensity);
    Walker& walker = from_payload ? payload_walker : app_walker;
    trace::RawEvent e = walker.next_event();
    e.seq = seq;
    log.events.push_back(std::move(e));
    out.is_malicious.push_back(from_payload ||
                               walker.stack_matches(trojan.is_payload_fn));
  }
  return out;
}

Executor::CampaignRun Executor::run_campaign(
    const Program& app, const std::vector<CampaignStagePlan>& stages,
    std::size_t num_events, util::Rng rng) const {
  LEAPS_CHECK_MSG(!stages.empty(), "campaign needs at least one stage");
  CampaignRun out;
  trace::RawLog& log = out.log;
  log.process_name = app.name;
  // Stage payloads live in far private allocations with no image record
  // (online-injection style): their frames resolve to no module and land
  // on the application stack trace, visible to CFG inference.
  log.modules.push_back({app.image_base, app.image_size, app.name});
  registry_.append_records(log);

  Walker app_walker(&app, &behavior_, &config_, /*tid=*/1,
                    {base_thread_init_, user_thread_start_}, rng.fork(1));
  std::vector<Walker> stage_walkers;
  stage_walkers.reserve(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    LEAPS_CHECK_MSG(stages[s].payload != nullptr, "stage without payload");
    LEAPS_CHECK_MSG(stages[s].begin <= stages[s].end, "inverted dwell window");
    LEAPS_CHECK_MSG(s == 0 || stages[s - 1].end <= stages[s].begin,
                    "overlapping dwell windows");
    // Remote/implant threads begin at RtlUserThreadStart directly.
    stage_walkers.emplace_back(stages[s].payload, &behavior_, &config_,
                               /*tid=*/static_cast<std::uint32_t>(2 + s),
                               std::vector<std::uint64_t>{user_thread_start_},
                               rng.fork(2 + s));
  }

  // Markov attack sessions, re-armed per stage: the adversary works each
  // stage's tooling in bursts inside its dwell window, then goes quiet
  // until the next stage opens.
  const double attack_mean = std::max(1.0, config_.attack_phase_mean_events);
  bool in_attack = false;
  std::size_t active_stage = stages.size();  // sentinel: none

  log.events.reserve(num_events);
  out.is_malicious.reserve(num_events);
  out.stage_of_event.reserve(num_events);
  for (std::size_t seq = 0; seq < num_events; ++seq) {
    std::size_t stage = stages.size();
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (seq >= stages[s].begin && seq < stages[s].end) {
        stage = s;
        break;
      }
    }
    if (stage != active_stage) {
      in_attack = false;  // dwell boundary closes any open session
      active_stage = stage;
    }
    bool from_payload = false;
    if (stage < stages.size()) {
      const double intensity =
          std::clamp(stages[stage].intensity, 0.05, 1.0);
      const double f_attack =
          std::min(0.95, config_.payload_ratio / intensity);
      const double benign_mean =
          std::max(1.0, attack_mean * (1.0 - f_attack) / f_attack);
      if (in_attack) {
        if (rng.next_bool(1.0 / attack_mean)) in_attack = false;
      } else {
        if (rng.next_bool(1.0 / benign_mean)) in_attack = true;
      }
      from_payload = in_attack && rng.next_bool(intensity);
    }
    Walker& walker =
        from_payload ? stage_walkers[stage] : app_walker;
    trace::RawEvent e = walker.next_event();
    e.seq = seq;
    log.events.push_back(std::move(e));
    out.is_malicious.push_back(from_payload);
    out.stage_of_event.push_back(
        from_payload ? static_cast<int>(stage) : -1);
  }
  return out;
}

trace::RawLog Executor::run_payload_standalone(const Program& payload,
                                               std::size_t num_events,
                                               util::Rng rng) const {
  trace::RawLog log;
  log.process_name = payload.name + ".exe";
  log.modules.push_back(
      {payload.image_base, payload.image_size, log.process_name});
  registry_.append_records(log);

  // The payload's entry thread immediately spawns its worker/communication
  // thread (Meterpreter-style); the traced activity runs there, so its
  // walks unwind to RtlUserThreadStart like the injected backdoor thread.
  Walker walker(&payload, &behavior_, &config_, /*tid=*/2,
                {user_thread_start_}, rng.fork(1));
  log.events.reserve(num_events);
  for (std::size_t seq = 0; seq < num_events; ++seq) {
    trace::RawEvent e = walker.next_event();
    e.seq = seq;
    log.events.push_back(std::move(e));
  }
  return log;
}

}  // namespace leaps::sim
