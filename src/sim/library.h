// Registry of modeled system libraries and kernel modules.
//
// Each library exports a fixed set of functions at deterministic addresses.
// The registry provides the MODULE/SYMBOL records for raw logs (system
// modules ship symbols; the application image does not) and address lookup
// for the executor when it fabricates stack walks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/raw_log.h"

namespace leaps::sim {

struct SystemLibrary {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  bool is_kernel = false;
  std::vector<std::string> functions;  // entry i at base + offset(i)

  std::uint64_t function_address(std::size_t index) const;
};

class LibraryRegistry {
 public:
  /// Builds the standard registry: ntdll, kernel32, kernelbase, user32,
  /// gdi32, advapi32, ws2_32, mswsock, wininet, secur32, crypt32, bcrypt,
  /// msvcrt, dnsapi, shell32, comctl32 + kernel modules (ntoskrnl, win32k,
  /// ntfs, tcpip, afd, fltmgr, cng).
  static LibraryRegistry standard();

  /// Resolves a library!function pair to its synthetic address.
  /// Throws std::logic_error if the pair is not registered (a table bug).
  std::uint64_t address_of(std::string_view lib, std::string_view func) const;

  const std::vector<SystemLibrary>& libraries() const { return libs_; }

  /// MODULE + SYMBOL records for every system library (for raw-log headers).
  void append_records(trace::RawLog& log) const;

 private:
  void add(SystemLibrary lib);

  std::vector<SystemLibrary> libs_;
  std::unordered_map<std::string, std::uint64_t> addr_index_;  // "lib!func"
};

}  // namespace leaps::sim
