// Behavioral profiles of the five benign applications and three malicious
// payloads evaluated in the paper (Table I).
//
// Profiles are deliberately contrastive along the same axes as the real
// programs: Putty/WinSCP are network-and-crypto heavy (overlapping the
// reverse-shell payloads — the paper's hardest cases), Chrome touches many
// subsystems, Notepad++/Vim are file-and-UI editors. Payload profiles mirror
// the Metasploit Meterpreter behaviors (reverse TCP / reverse HTTPS) and the
// Codeinject password-dialog payload.
#pragma once

#include <string_view>
#include <vector>

#include "sim/program.h"

namespace leaps::sim {

/// Spec for a benign application by name: "winscp", "chrome", "notepad++",
/// "putty", "vim". Throws std::invalid_argument for unknown names.
ProgramSpec app_spec(std::string_view app_name);

/// Spec for a payload by name: "reverse_tcp", "reverse_https", "pwddlg"
/// (the paper's "Pwddlg" code-inject payload). Throws std::invalid_argument
/// for unknown names.
ProgramSpec payload_spec(std::string_view payload_name);

std::vector<std::string_view> known_apps();
std::vector<std::string_view> known_payloads();

}  // namespace leaps::sim
