// Deterministic pseudo-random number generation for the LEAPS simulator and
// experiment harness.
//
// Every stochastic component in the repository draws from an explicitly
// seeded Rng so that all tables and figures regenerate byte-identically.
// The generator is xoshiro256** seeded via splitmix64 (public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace leaps::util {

/// Stateless mixing function; used for seeding and for deterministic
/// hash-based "coin flips" (e.g. CGraph tie-breaking).
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic 64-bit string hash (FNV-1a folded through splitmix64);
/// used to derive per-scenario seeds from names.
std::uint64_t hash_string(std::string_view s);

/// xoshiro256** — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent stream (for per-thread / per-component use).
  Rng fork(std::uint64_t stream_id) const;

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Standard normal variate (Box–Muller, no caching for determinism).
  double next_gaussian();

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() == 0 ? throws : index in [0, size).
  std::size_t sample_weighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace leaps::util
