#include "util/fault.h"

#include <cstdlib>
#include <thread>
#include <vector>

namespace leaps::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

namespace {

std::uint64_t derive_seed(std::uint64_t global, const std::string& point,
                          std::uint64_t spec_seed) {
  if (spec_seed != 0) return spec_seed;
  return splitmix64(global ^ hash_string(point));
}

}  // namespace

void FaultInjector::set_seed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mu_);
  global_seed_ = seed;
  for (auto& [name, armed] : points_) {
    armed.rng = Rng(derive_seed(global_seed_, name, armed.spec.seed));
  }
}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  Armed armed;
  armed.rng = Rng(derive_seed(global_seed_, point, spec.seed));
  armed.spec = std::move(spec);
  const auto [it, inserted] = points_.insert_or_assign(point,
                                                       std::move(armed));
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

bool FaultInjector::arm_from_spec(std::string_view text) {
  // point:action:probability[:delay_us|:exit_code]
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ':') {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() < 3 || parts.size() > 4 || parts[0].empty()) return false;
  FaultSpec spec;
  if (parts[1] == "throw") {
    spec.action = FaultAction::kThrow;
  } else if (parts[1] == "error") {
    spec.action = FaultAction::kError;
  } else if (parts[1] == "delay") {
    spec.action = FaultAction::kDelay;
  } else if (parts[1] == "exit") {
    spec.action = FaultAction::kExit;
  } else {
    return false;
  }
  char* end = nullptr;
  const std::string prob(parts[2]);
  spec.probability = std::strtod(prob.c_str(), &end);
  if (end == prob.c_str() || *end != '\0' || spec.probability < 0.0 ||
      spec.probability > 1.0) {
    return false;
  }
  if (parts.size() == 4) {
    const std::string num(parts[3]);
    const unsigned long long n = std::strtoull(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0') return false;
    if (spec.action == FaultAction::kExit) {
      // The wait-status machinery only surfaces the low 8 bits.
      if (n > 255) return false;
      spec.exit_code = static_cast<int>(n);
    } else {
      spec.delay = std::chrono::microseconds(n);
    }
  } else if (spec.action == FaultAction::kDelay) {
    return false;  // delay points need a duration
  }
  arm(std::string(parts[0]), std::move(spec));
  return true;
}

void FaultInjector::disarm(const std::string& point) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

Status FaultInjector::hit(std::string_view point, std::string_view detail) {
  FaultAction action;
  std::chrono::microseconds delay{0};
  StatusCode error_code;
  int exit_code = 137;
  std::string name;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(point);
    if (it == points_.end()) return ok_status();
    Armed& armed = it->second;
    ++armed.evaluated;
    // Filter before drawing: steady traffic must not perturb the victim's
    // injection pattern.
    if (!armed.spec.filter.empty() &&
        detail.find(armed.spec.filter) == std::string_view::npos) {
      return ok_status();
    }
    if (!armed.rng.next_bool(armed.spec.probability)) return ok_status();
    ++armed.injected;
    action = armed.spec.action;
    delay = armed.spec.delay;
    error_code = armed.spec.error_code;
    exit_code = armed.spec.exit_code;
    name = it->first;
  }
  switch (action) {
    case FaultAction::kThrow:
      throw FaultInjectedError(name);
    case FaultAction::kDelay:
      std::this_thread::sleep_for(delay);
      return ok_status();
    case FaultAction::kError:
      return Status(error_code, "injected fault at " + name);
    case FaultAction::kExit:
      // _Exit, not exit/abort: no atexit handlers, no stream flushing, no
      // signal machinery — the closest portable stand-in for kill -9.
      std::_Exit(exit_code);
  }
  return ok_status();
}

std::uint64_t FaultInjector::evaluated(const std::string& point) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.evaluated;
}

std::uint64_t FaultInjector::injected(const std::string& point) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

}  // namespace leaps::util
