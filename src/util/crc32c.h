// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding the
// durability layer's on-disk bytes (persist v3 block trailers, WAL record
// frames, durable snapshots). Chosen over plain CRC32 for its strictly
// better error-detection properties on short records and because it is the
// checksum real storage systems (ext4 metadata, LevelDB, iSCSI) settled on,
// so offline tooling can verify our files.
//
// Software slice-by-one implementation: the durability paths checksum at
// most a few hundred KB per snapshot, far off any hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace leaps::util {

/// CRC32C of `size` bytes starting at `data`, seeded with `seed` (pass the
/// previous return value to checksum discontiguous pieces as one stream).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace leaps::util
