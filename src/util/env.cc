#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace leaps::util {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return parsed;
}

bool env_flag(const std::string& name) {
  std::string v = env_string(name, "");
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace leaps::util
