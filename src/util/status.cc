#include "util/status.h"

namespace leaps::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCorruptInput:
      return "CORRUPT_INPUT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace leaps::util
