// Crash-safe file replacement: write to a temp file in the destination's
// directory, flush, fsync, then rename over the target and fsync the
// directory. A reader therefore sees either the complete old file or the
// complete new file — never a torn mix — and a kill -9 at any instant
// leaves at worst an orphaned `.tmp.*` sibling, never a half-written model
// at the target path.
//
// Fault point: "durable.snapshot.pre_rename" fires after the temp file is
// durable but before the rename, the worst possible crash instant for a
// non-atomic writer. leaps-chaos --crash kills the process there and
// asserts the old file survived intact.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "util/status.h"

namespace leaps::util {

/// Writes `path` atomically: `fill` streams the payload into a temp file
/// sited next to `path`; on success the temp file is fsync'd and renamed
/// over `path`. Returns kUnavailable (with errno text) on any I/O failure
/// and propagates exceptions from `fill` after unlinking the temp file, so
/// a failed write never disturbs the previous contents of `path`.
Status atomic_write_file(const std::string& path,
                         const std::function<void(std::ostream&)>& fill);

}  // namespace leaps::util
