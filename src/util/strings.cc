#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace leaps::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out, 16);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string hex_addr(std::uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace leaps::util
