// Lightweight invariant checking for LEAPS.
//
// LEAPS_CHECK is always on (library invariants, precondition violations are
// programming errors and throw std::logic_error so callers and tests can
// observe them); LEAPS_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace leaps::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LEAPS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace leaps::util

#define LEAPS_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::leaps::util::check_failed(#expr, __FILE__, __LINE__, {});       \
  } while (0)

#define LEAPS_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr))                                                        \
      ::leaps::util::check_failed(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define LEAPS_DCHECK(expr) ((void)0)
#else
#define LEAPS_DCHECK(expr) LEAPS_CHECK(expr)
#endif
