// String helpers for the raw-log format and report printing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace leaps::util {

/// Split on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a hexadecimal address of the form "0x1234abcd" or "1234abcd".
/// Returns false on malformed input.
bool parse_hex_u64(std::string_view s, std::uint64_t& out);

/// Formats an address as 0x%016x.
std::string hex_addr(std::uint64_t addr);

/// Fixed-point formatting with the given number of decimals (for tables).
std::string fixed(double v, int decimals);

}  // namespace leaps::util
