// Small summary-statistics helpers used by the experiment harness
// (10-run averaging) and the micro-benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace leaps::util {

/// Welford online accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Linear-interpolated percentile; p in [0, 100]. xs need not be sorted.
double percentile(std::vector<double> xs, double p);

}  // namespace leaps::util
