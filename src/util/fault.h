// Named fault points for chaos testing the detection service.
//
// Production code marks the places where hostile reality intrudes:
//
//   LEAPS_FAULT_POINT("serve.worker.classify");
//
// Disarmed (the default), a fault point is one relaxed atomic load and a
// predicted branch — effectively free. A test or the leaps-chaos CLI arms
// points on the process-wide FaultInjector to throw, delay (latency
// injection), or report an error Status with a given probability, drawn
// from a deterministically seeded per-point RNG so chaos runs replay
// exactly.
//
// Fault-point catalog (grep LEAPS_FAULT_POINT for ground truth):
//   serve.worker.classify          per-event, inside Session::feed_run
//   serve.registry.find            DetectorRegistry lookup (kError → miss)
//   trace.ingest.read              read_raw_log_binary / read_raw_log_any
//   durable.snapshot.pre_rename    after temp fsync, before rename
//   durable.wal.append.mid         after a WAL record header is on disk,
//                                  before its body (torn-record drill)
//   durable.checkpoint.pre_truncate after snapshot rename, before the WAL
//                                  truncate (double-replay drill)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/status.h"

namespace leaps::util {

enum class FaultAction {
  kThrow,  // hit() throws FaultInjectedError
  kError,  // hit() returns an error Status
  kDelay,  // hit() sleeps for `delay`, then returns OK
  kExit,   // hit() calls _Exit(exit_code): simulated kill -9. No unwind,
           // no flush — exactly what a crash leaves on disk.
};

struct FaultSpec {
  FaultAction action = FaultAction::kThrow;
  /// Injection probability per evaluation, in [0, 1].
  double probability = 1.0;
  /// Sleep duration for kDelay.
  std::chrono::microseconds delay{0};
  /// Status code reported by kError points.
  StatusCode error_code = StatusCode::kInternal;
  /// Process exit status for kExit (137 mirrors a SIGKILL'd shell child;
  /// the spec grammar's optional fourth field overrides it).
  int exit_code = 137;
  /// When non-empty, inject only at hits whose `detail` contains this
  /// substring (e.g. a session key — lets chaos target victim sessions
  /// while steady sessions stay fault-free).
  std::string filter;
  /// Per-point RNG seed; 0 derives one from the global seed + point name.
  std::uint64_t seed = 0;
};

class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Global seed for points whose spec leaves seed == 0; re-seeds points
  /// already armed. Same seed + same evaluation order → same injections.
  void set_seed(std::uint64_t seed);

  void arm(const std::string& point, FaultSpec spec);
  /// Arms from a CLI spec "point:action:probability[:delay_us|:exit_code]"
  /// where action ∈ {throw, error, delay, exit}. The optional fourth field
  /// is the sleep in microseconds (required for delay) — except for exit,
  /// where it is the process exit status (0-255, default 137). Returns
  /// false on a malformed spec.
  bool arm_from_spec(std::string_view spec);
  void disarm(const std::string& point);
  void disarm_all();

  /// True when any point is armed — the macro's fast-path gate.
  bool any_armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the point: not armed, filter mismatch, or probability miss
  /// → OK. Armed hit: kThrow throws FaultInjectedError, kDelay sleeps then
  /// returns OK, kError returns the armed Status.
  Status hit(std::string_view point, std::string_view detail = {});

  /// Times hit() was evaluated / actually injected for an armed point
  /// (0 after disarm).
  std::uint64_t evaluated(const std::string& point) const;
  std::uint64_t injected(const std::string& point) const;

 private:
  struct Armed {
    FaultSpec spec;
    Rng rng{0};
    std::uint64_t evaluated = 0;
    std::uint64_t injected = 0;
  };

  FaultInjector() = default;

  std::atomic<int> armed_points_{0};
  mutable std::mutex mu_;
  std::uint64_t global_seed_ = 0;  // guarded by mu_
  std::map<std::string, Armed, std::less<>> points_;  // guarded by mu_
};

/// RAII arm/disarm, for tests.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec) : point_(std::move(point)) {
    FaultInjector::instance().arm(point_, std::move(spec));
  }
  ~ScopedFault() { FaultInjector::instance().disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace leaps::util

/// Marks a fault point in throwing/void code. kError injections are
/// surfaced as FaultInjectedError too (there is no Status to return).
#define LEAPS_FAULT_POINT(point) \
  LEAPS_FAULT_POINT_DETAIL(point, ::std::string_view{})

#define LEAPS_FAULT_POINT_DETAIL(point, detail)                            \
  do {                                                                     \
    auto& leaps_fault_injector = ::leaps::util::FaultInjector::instance(); \
    if (leaps_fault_injector.any_armed()) {                                \
      if (!leaps_fault_injector.hit((point), (detail)).ok()) {             \
        throw ::leaps::util::FaultInjectedError(point);                    \
      }                                                                    \
    }                                                                      \
  } while (0)

/// Marks a fault point in a Status/StatusOr-returning function: a kError
/// injection returns that Status to the caller.
#define LEAPS_FAULT_POINT_STATUS(point)                                    \
  do {                                                                     \
    auto& leaps_fault_injector = ::leaps::util::FaultInjector::instance(); \
    if (leaps_fault_injector.any_armed()) {                                \
      ::leaps::util::Status leaps_fault_status =                           \
          leaps_fault_injector.hit(point);                                 \
      if (!leaps_fault_status.ok()) return leaps_fault_status;             \
    }                                                                      \
  } while (0)
