#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault.h"

namespace leaps::util {

namespace {

std::string errno_text(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

// fsync a path opened read-only (used for the containing directory so the
// rename itself is durable, not just the renamed file's contents).
Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return unavailable(errno_text("open", path));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return unavailable(errno_text("fsync", path));
  return ok_status();
}

}  // namespace

Status atomic_write_file(const std::string& path,
                         const std::function<void(std::ostream&)>& fill) {
  // Temp file must live in the target's directory: rename(2) is only
  // atomic within one filesystem.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return unavailable(errno_text("create", tmp));
    try {
      fill(out);
    } catch (...) {
      out.close();
      ::unlink(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      ::unlink(tmp.c_str());
      return unavailable(errno_text("write", tmp));
    }
  }

  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    ::unlink(tmp.c_str());
    return unavailable(errno_text("open", tmp));
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return unavailable(errno_text("fsync", tmp));
  }
  ::close(fd);

  // The new bytes are durable under the temp name; the target still holds
  // the previous generation. A crash here loses nothing.
  try {
    LEAPS_FAULT_POINT("durable.snapshot.pre_rename");
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = unavailable(errno_text("rename", tmp));
    ::unlink(tmp.c_str());
    return status;
  }
  // Make the directory entry durable too; best effort on filesystems that
  // refuse to fsync directories.
  (void)fsync_path(dir);
  return ok_status();
}

}  // namespace leaps::util
