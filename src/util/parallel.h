// Shared parallel-compute substrate for the training hot paths.
//
// A single lazily-started global thread pool (`Parallel`) and a blocked
// `parallel_for` on top of it. Design contract:
//
//   * Deterministic results independent of thread count. The range is cut
//     into fixed-size chunks derived only from `grain` (never from the
//     worker count); which thread executes a chunk varies, but every body
//     writes to disjoint output slots, so the bytes produced are identical
//     for --threads 1 and --threads N. Reductions must happen on the
//     caller's side, in chunk order.
//   * The caller participates: with T configured threads, T-1 pool workers
//     assist the calling thread, and --threads 1 never touches the pool at
//     all (pure inline execution, no synchronization).
//   * Nested calls are safe and run inline. A body that itself calls
//     parallel_for (e.g. SVM training inside a parallel cross-validation
//     task) executes serially instead of deadlocking or oversubscribing;
//     the outermost loop owns the parallelism.
//   * Exceptions propagate. If bodies throw, the exception of the
//     lowest-indexed failing chunk is rethrown on the caller once all
//     chunks finished (again independent of thread count).
//
// Sizing: `Parallel::set_threads(n)` (the shared --threads flag), else
// LEAPS_THREADS, else std::thread::hardware_concurrency. See DESIGN.md §10.
#pragma once

#include <cstddef>
#include <functional>

namespace leaps::util {

/// Body of a blocked loop: processes indices [begin, end).
using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;

class ThreadPool;

class Parallel {
 public:
  /// Worker threads plus the caller; >= 1. Resolves (and starts the pool
  /// lazily) on first use.
  static std::size_t threads();

  /// Reconfigures the pool size: n == 0 resolves the automatic default
  /// (LEAPS_THREADS, else hardware_concurrency). Joins the old pool first,
  /// so call between parallel regions (tools call it once at startup;
  /// tests use it to compare thread counts in-process).
  static void set_threads(std::size_t n);

  /// The global pool (started on first call). Exposed for direct task
  /// submission; parallel_for is the intended interface.
  static ThreadPool& pool();
};

/// Runs fn over [begin, end) cut into chunks of `grain` indices (the last
/// chunk may be short). Blocks until every chunk completed; rethrows the
/// first failing chunk's exception. Runs inline when the range fits one
/// chunk, the pool is configured single-threaded, or the call is nested
/// inside another parallel_for body.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const RangeFn& fn);

}  // namespace leaps::util
