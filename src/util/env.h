// Environment-variable configuration knobs shared by benches and examples.
//
// The benchmark harness is sized so that every binary completes in minutes;
// these knobs let CI (LEAPS_FAST=1) or a patient user (LEAPS_RUNS=10,
// LEAPS_EVENTS=20000) trade fidelity against wall-clock time without
// recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace leaps::util {

/// Returns the env var value, or fallback when unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Returns the env var parsed as a non-negative integer, or fallback when
/// unset or unparseable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// True when the env var is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const std::string& name);

}  // namespace leaps::util
