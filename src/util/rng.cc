#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace leaps::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    sm = splitmix64(sm);
    s = sm;
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng(splitmix64(s_[0] ^ splitmix64(stream_id ^ 0xA5A5A5A5A5A5A5A5ULL)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LEAPS_CHECK_MSG(bound != 0, "next_below(0)");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  LEAPS_CHECK_MSG(lo <= hi, "next_int: empty range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box–Muller; discard the second variate to keep the stream simple.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::sample_weighted(const std::vector<double>& weights) {
  LEAPS_CHECK_MSG(!weights.empty(), "sample_weighted: empty weights");
  double total = 0.0;
  for (double w : weights) {
    LEAPS_CHECK_MSG(w >= 0.0, "sample_weighted: negative weight");
    total += w;
  }
  LEAPS_CHECK_MSG(total > 0.0, "sample_weighted: all-zero weights");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric slop: return the last nonzero entry
}

}  // namespace leaps::util
