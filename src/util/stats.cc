#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace leaps::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double mean(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile(std::vector<double> xs, double p) {
  LEAPS_CHECK_MSG(!xs.empty(), "percentile of empty vector");
  LEAPS_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace leaps::util
