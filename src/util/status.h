// Status / StatusOr<T>: the error taxonomy for LEAPS's untrusted
// boundaries.
//
// The ingest path (raw-log parsing, binary decoding) and the serving layer
// face attacker-controllable input: a camouflaged intruder who can crash
// the collector blinds detection exactly when it matters. Code on those
// boundaries returns Status/StatusOr instead of throwing across module
// boundaries, so every failure is a value the caller must look at:
//
//   kCorruptInput       — malformed/hostile bytes (bad magic, truncation,
//                         implausible counts, grammar violations)
//   kResourceExhausted  — an input demanded more memory/space than sane
//   kTimeout            — an operation exceeded its deadline
//   kNotFound           — a named thing (profile, file) is absent
//   kUnavailable        — transiently unusable; retrying may succeed
//   kInvalidArgument    — caller passed an unusable parameter
//   kInternal           — a bug or injected fault; never input-dependent
//
// LEAPS_CHECK (util/check.h) remains the tool for true invariants:
// violations there are programming errors, not inputs, and still throw.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace leaps::util {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kCorruptInput,
  kResourceExhausted,
  kTimeout,
  kNotFound,
  kUnavailable,
  kInvalidArgument,
  kInternal,
};

/// Stable upper-case name, e.g. "CORRUPT_INPUT" (for logs and JSON).
const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// "OK" or "CORRUPT_INPUT: bad magic".
  std::string to_string() const;

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status ok_status() { return Status(); }
inline Status corrupt_input(std::string msg) {
  return Status(StatusCode::kCorruptInput, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status timeout_error(std::string msg) {
  return Status(StatusCode::kTimeout, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status invalid_argument_error(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// A value or the Status explaining why there is none. Accessing value()
/// on a non-OK StatusOr is a programming error (LEAPS_CHECK).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    LEAPS_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LEAPS_CHECK_MSG(ok(), status_.to_string());
    return *value_;
  }
  T& value() & {
    LEAPS_CHECK_MSG(ok(), status_.to_string());
    return *value_;
  }
  T&& value() && {
    LEAPS_CHECK_MSG(ok(), status_.to_string());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace leaps::util
