#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.h"

namespace leaps::util {

namespace {

// Depth of parallel_for bodies executing on this thread (caller or pool
// worker). Nonzero → nested call → run inline.
thread_local int g_for_depth = 0;

std::size_t resolve_auto_threads() {
  const std::int64_t env = env_int("LEAPS_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

}  // namespace

/// Fixed-size worker pool. Tasks are plain closures; the pool makes no
/// ordering promises (parallel_for layers determinism on top).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  std::size_t worker_count() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void worker_main() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;    // worker threads: threads - 1
std::size_t g_threads = 0;             // 0 = not yet resolved

std::shared_ptr<ThreadPool> pool_snapshot() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_pool == nullptr) {
    if (g_threads == 0) g_threads = resolve_auto_threads();
    g_pool = std::make_shared<ThreadPool>(g_threads - 1);
  }
  return g_pool;
}

}  // namespace

std::size_t Parallel::threads() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_threads == 0) g_threads = resolve_auto_threads();
  return g_threads;
}

void Parallel::set_threads(std::size_t n) {
  std::shared_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    const std::size_t resolved = n == 0 ? resolve_auto_threads() : n;
    if (resolved == g_threads && g_pool != nullptr) return;
    g_threads = resolved;
    old = std::move(g_pool);  // joined below, outside the lock
  }
}

ThreadPool& Parallel::pool() { return *pool_snapshot(); }

namespace {

/// Shared state of one parallel_for region. Chunks are claimed off an
/// atomic counter by the caller and any assisting workers; completion is
/// a second counter plus a condition variable the caller waits on. The
/// struct outlives the call via shared_ptr: a worker that dequeues its
/// assist task after every chunk is claimed just returns.
struct ForRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const RangeFn* fn = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::exception_ptr> errors;  // slot per chunk

  void work() {
    ++g_for_depth;
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= chunks) break;
      const std::size_t cb = begin + k * grain;
      const std::size_t ce = std::min(end, cb + grain);
      try {
        (*fn)(cb, ce);
      } catch (...) {
        errors[k] = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lk(mu);
        cv.notify_all();
      }
    }
    --g_for_depth;
  }
};

void rethrow_first(const std::vector<std::exception_ptr>& errors) {
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const RangeFn& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;

  // Inline paths: trivial range, single-threaded config, or nested call.
  // Chunk boundaries still apply so an exception aborts at the same chunk
  // granularity as the pooled path.
  if (chunks == 1 || g_for_depth > 0 || Parallel::threads() <= 1) {
    ++g_for_depth;
    try {
      for (std::size_t k = 0; k < chunks; ++k) {
        const std::size_t cb = begin + k * grain;
        fn(cb, std::min(end, cb + grain));
      }
    } catch (...) {
      --g_for_depth;
      throw;
    }
    --g_for_depth;
    return;
  }

  auto region = std::make_shared<ForRegion>();
  region->begin = begin;
  region->end = end;
  region->grain = grain;
  region->chunks = chunks;
  region->fn = &fn;
  region->errors.resize(chunks);

  const std::shared_ptr<ThreadPool> pool = pool_snapshot();
  const std::size_t helpers =
      std::min(pool->worker_count(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([region] { region->work(); });
  }
  region->work();  // the caller is a full participant
  {
    std::unique_lock<std::mutex> lk(region->mu);
    region->cv.wait(lk, [&] {
      return region->done.load(std::memory_order_acquire) == chunks;
    });
  }
  // Take ownership of the error slots: a worker that dequeued its assist
  // task late may drop the last region reference after we return, and the
  // stored exceptions must not be destroyed on that thread while the caller
  // still examines the rethrown one (the exception_ptr refcount lives in
  // uninstrumented libstdc++, so TSan would also flag that free).
  std::vector<std::exception_ptr> errors = std::move(region->errors);
  rethrow_first(errors);
}

}  // namespace leaps::util
