// Shared untrusted-log ingest for the leaps tools.
//
// Opens `path` — "-" means stdin — autodetects text vs binary (the
// detector peeks a single byte, so pipes work), and surfaces corruption
// as a Status the tool turns into a diagnostic + exit code instead of an
// uncaught exception.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/status.h"

namespace leaps::cli {

/// Reads a raw log (text or binary) from `path`; "-" reads stdin.
inline util::StatusOr<trace::RawLog> read_raw_log_path(
    const std::string& path) {
  if (path == "-") return trace::read_raw_log_any(std::cin);
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::not_found("cannot open " + path);
  return trace::read_raw_log_any(is);
}

/// read_raw_log_path + symbol resolution + stack partitioning.
inline util::StatusOr<trace::PartitionedLog> load_partitioned_log(
    const std::string& path) {
  util::StatusOr<trace::RawLog> raw = read_raw_log_path(path);
  if (!raw.ok()) return raw.status();
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(*raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

}  // namespace leaps::cli
