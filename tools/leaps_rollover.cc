// leaps_rollover — operator tooling for the online-learning subsystem.
//
// Subcommands:
//   retrain <detector> <benign.log> <candidate-out>
//       Offline form of the online retrain cycle: folds the log's
//       detector-benign windows into the continual CFG, refits the SVM
//       warm-started from the deployed model's dual solution, reports the
//       iteration savings vs a cold fit, and saves the candidate.
//   shadow <incumbent> <candidate> <traffic.log>
//       Offline shadow evaluation: replays the traffic through both
//       detectors window-aligned, diffs the verdicts, applies the
//       rollover gates. Exit 0 = promote, 4 = rollback/undecided.
//   drill <detector> <broken-out>
//       Writes a deliberately broken candidate (verdict threshold pushed
//       to +1e18, so every window classifies malicious) for rollback
//       drills — `shadow incumbent broken traffic` must exit 4.
//   diff <detector-a> <detector-b> <traffic.log>
//       Prints the positional verdict diff of the two detectors over the
//       traffic (online::diff_sequences).
//   recover <durable-dir> [--detector-out FILE]
//       Replays a durable directory (snapshot.leaps + journal.wal) the way
//       a restarting server would — torn journal tails are truncated, and
//       records the snapshot already folded are skipped — then prints the
//       recovered state. Optionally re-saves the recovered incumbent.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli.h"
#include "core/persist.h"
#include "durable/store.h"
#include "ingest.h"
#include "online/accumulator.h"
#include "online/drift.h"
#include "online/retrain.h"
#include "online/shadow.h"
#include "online/verdict_diff.h"
#include "trace/partition.h"

namespace {

using namespace leaps;

constexpr const char* kUsage =
    "usage: leaps-rollover <subcommand> <args...>\n"
    "  retrain <detector> <benign.log> <candidate-out>\n"
    "      warm-started incremental retrain; prints iteration savings\n"
    "  shadow <incumbent> <candidate> <traffic.log>\n"
    "      gate evaluation; exit 0 = promote, 4 = rollback\n"
    "  drill <detector> <broken-out>\n"
    "      write an all-malicious candidate for rollback drills\n"
    "  diff <detector-a> <detector-b> <traffic.log>\n"
    "      positional verdict diff over the traffic\n"
    "  drift <detector> <reference.log> <live.log>\n"
    "      offline drift check: two-sample KS over the decision values of\n"
    "      the two replays; exit 0 = stable, 4 = drift\n"
    "  recover <durable-dir>\n"
    "      recover and summarize a crash-safe state directory\n"
    "options:\n"
    "  --detector-out FILE     (recover) save the recovered incumbent\n"
    "  --admit-floor F         CFG admission floor for retrain "
    "(default 0.25)\n"
    "  --retrain-events N      unused trigger floor (retrain runs "
    "unconditionally)\n"
    "  --no-cold-baseline      skip the cold fit (faster, no savings "
    "number)\n"
    "  --shadow-min-windows N  pairs required before gating (default 64)\n"
    "  --shadow-max-disagree F max disagreement rate (default 0.02)\n"
    "  --shadow-max-latency F  max latency ratio (default 3.0)\n"
    "  --drift-p F             (drift) KS p-value threshold (default "
    "0.01)\n"
    "exit: 0 ok/promote/stable, 4 rollback/drift, 1 error, 2 usage\n";

trace::PartitionedLog load_log(const std::string& path) {
  util::StatusOr<trace::PartitionedLog> log = cli::load_partitioned_log(path);
  if (!log.ok()) {
    std::fprintf(stderr, "leaps-rollover: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    std::exit(1);
  }
  return *std::move(log);
}

core::Detector load_detector(const std::string& path) {
  try {
    return core::load_detector_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-rollover: %s\n", e.what());
    std::exit(1);
  }
}

/// Replays the log through one detector, timing each window.
struct Replayed {
  std::vector<int> verdicts;
  std::uint64_t total_ns = 0;
};

Replayed replay(const core::Detector& detector,
                const trace::PartitionedLog& log) {
  Replayed out;
  core::Detector::Stream stream = detector.stream();
  for (const trace::PartitionedEvent& event : log.events) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::optional<int> label = stream.push(event);
    const auto t1 = std::chrono::steady_clock::now();
    out.total_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (label.has_value()) out.verdicts.push_back(*label);
  }
  return out;
}

int cmd_retrain(const std::vector<std::string>& pos, double admit_floor,
                bool cold_baseline) {
  const core::Detector base = load_detector(pos[1]);
  const trace::PartitionedLog log = load_log(pos[2]);
  if (base.continual() == nullptr) {
    std::fprintf(stderr,
                 "leaps-rollover: %s carries no continual state (pre-v2 "
                 "file): online retraining unavailable, retrain offline "
                 "with leaps-train\n",
                 pos[1].c_str());
    return 1;
  }
  auto shared_base = std::make_shared<const core::Detector>(base);

  online::AccumulatorOptions acc_options;
  acc_options.admit_floor = admit_floor;
  online::OnlineCfgAccumulator accumulator(base.continual()->benign_cfg,
                                           acc_options);
  // Feed every window the deployed detector itself classifies benign —
  // exactly what the server's window tap would deliver.
  const std::size_t window = base.preprocessor().window();
  core::Detector::Stream stream = base.stream();
  std::vector<trace::PartitionedEvent> buffer;
  std::size_t benign_windows = 0;
  for (const trace::PartitionedEvent& event : log.events) {
    buffer.push_back(event);
    const std::optional<int> label = stream.push(event);
    if (buffer.size() == window) {
      if (label.has_value() && *label == 1) {
        accumulator.observe_window(buffer.data(), buffer.size());
        ++benign_windows;
      }
      buffer.clear();
    }
  }
  std::printf("observed %zu benign windows from %s\n", benign_windows,
              pos[2].c_str());

  online::RetrainConfig config;
  config.min_new_events = 1;  // operator-invoked: always due
  config.measure_cold_baseline = cold_baseline;
  online::RetrainScheduler scheduler(shared_base, &accumulator, config);
  const online::RetrainResult result = scheduler.retrain();
  if (result.candidate == nullptr) {
    std::fprintf(stderr, "leaps-rollover: retrain failed: %s\n",
                 result.error.c_str());
    return 1;
  }
  const online::AccumulatorStats acc = accumulator.stats();
  std::printf("admitted %llu windows (rejected %llu below floor %.2f), "
              "%llu new CFG edges\n",
              static_cast<unsigned long long>(acc.windows_admitted),
              static_cast<unsigned long long>(acc.windows_rejected),
              admit_floor,
              static_cast<unsigned long long>(acc.edges_added));
  std::printf("retrained on %zu rows (%zu new): warm %zu iterations "
              "(%zu seed entries)",
              result.train_size, result.new_samples,
              result.warm_iterations, result.warm_nonzero);
  if (result.measured_cold) {
    std::printf(", cold %zu, saved %zu", result.cold_iterations,
                result.iterations_saved);
  }
  std::printf("\n");
  core::save_detector_file(*result.candidate, pos[3]);
  std::printf("saved candidate to %s\n", pos[3].c_str());
  return 0;
}

int cmd_shadow(const std::vector<std::string>& pos,
               const online::RolloverGates& gates) {
  const core::Detector incumbent = load_detector(pos[1]);
  const core::Detector candidate = load_detector(pos[2]);
  const trace::PartitionedLog log = load_log(pos[3]);
  const Replayed active = replay(incumbent, log);
  const Replayed shadow = replay(candidate, log);

  online::ShadowEvaluator evaluator(gates);
  const serve::SessionKey key{"rollover", 0};
  const std::size_t pairs =
      std::min(active.verdicts.size(), shadow.verdicts.size());
  // Window costs are aggregate/N — offline replay has no per-window
  // interleaving to preserve.
  const std::uint64_t active_per =
      pairs > 0 ? active.total_ns / pairs : 0;
  const std::uint64_t shadow_per =
      pairs > 0 ? shadow.total_ns / pairs : 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    evaluator.record(key, active.verdicts[i], shadow.verdicts[i],
                     active_per, shadow_per);
  }
  const online::DiffStats stats = evaluator.stats();
  std::printf("compared %llu windows: %llu disagreements (rate %.4f), "
              "latency ratio %.2f\n",
              static_cast<unsigned long long>(stats.compared),
              static_cast<unsigned long long>(stats.disagreements),
              stats.disagreement_rate(), stats.latency_ratio());
  switch (evaluator.decision()) {
    case online::RolloverDecision::kPromote:
      std::printf("decision: PROMOTE (disagreement <= %.4f, latency ratio "
                  "<= %.2f)\n",
                  gates.max_disagreement, gates.max_latency_ratio);
      return 0;
    case online::RolloverDecision::kRollback:
      std::printf("decision: ROLLBACK\n");
      return 4;
    case online::RolloverDecision::kUndecided:
      std::printf("decision: UNDECIDED (%llu of %llu required windows) — "
                  "not promotable\n",
                  static_cast<unsigned long long>(stats.compared),
                  static_cast<unsigned long long>(gates.min_windows));
      return 4;
  }
  return 1;
}

int cmd_drill(const std::vector<std::string>& pos) {
  core::Detector detector = load_detector(pos[1]);
  // Every decision value sits below +1e18, so every window flags
  // malicious: the maximally disagreeable candidate, guaranteed to trip
  // the disagreement gate on benign traffic.
  detector.set_decision_threshold(1e18);
  core::save_detector_file(detector, pos[2]);
  std::printf("wrote drill candidate (threshold 1e18, all-malicious) "
              "to %s\n",
              pos[2].c_str());
  return 0;
}

int cmd_diff(const std::vector<std::string>& pos) {
  const core::Detector a = load_detector(pos[1]);
  const core::Detector b = load_detector(pos[2]);
  const trace::PartitionedLog log = load_log(pos[3]);
  const online::SequenceDiff diff =
      online::diff_sequences(replay(a, log).verdicts,
                             replay(b, log).verdicts);
  std::printf("compared %zu windows: %zu disagreements (rate %.4f), "
              "length delta %zu\n",
              diff.compared, diff.disagreements, diff.disagreement_rate(),
              diff.length_delta);
  for (const std::size_t i : diff.mismatch_indices) {
    std::printf("  window %zu differs\n", i);
  }
  std::printf("%s", diff.identical() ? "verdicts identical\n"
                                     : "verdicts differ\n");
  return 0;
}

/// Replays a log, collecting each completed window's decision value —
/// the drift subcommand's sample extractor.
std::vector<double> decision_values(const core::Detector& detector,
                                    const trace::PartitionedLog& log) {
  std::vector<double> values;
  core::Detector::Stream stream = detector.stream();
  for (const trace::PartitionedEvent& event : log.events) {
    if (stream.push(event).has_value()) {
      values.push_back(stream.last_decision_value());
    }
  }
  return values;
}

int cmd_drift(const std::vector<std::string>& pos, double p_threshold) {
  const core::Detector detector = load_detector(pos[1]);
  const std::vector<double> reference =
      decision_values(detector, load_log(pos[2]));
  const std::vector<double> live =
      decision_values(detector, load_log(pos[3]));
  if (reference.empty() || live.empty()) {
    std::fprintf(stderr,
                 "leaps-rollover: drift needs at least one complete window "
                 "in each log (reference %zu, live %zu)\n",
                 reference.size(), live.size());
    return 1;
  }
  const double d = online::DriftMonitor::ks_statistic(reference, live);
  const double p =
      online::DriftMonitor::ks_p_value(d, reference.size(), live.size());
  std::printf("reference %zu windows, live %zu windows\n", reference.size(),
              live.size());
  std::printf("two-sample KS: D=%.6f p=%.6g (threshold %g)\n", d, p,
              p_threshold);
  if (p < p_threshold) {
    std::printf("decision: DRIFT — live decision values shifted from the "
                "reference\n");
    return 4;
  }
  std::printf("decision: STABLE\n");
  return 0;
}

int cmd_recover(const std::vector<std::string>& pos,
                const std::string& detector_out) {
  durable::DurableOptions options;
  options.dir = pos[1];
  durable::DurableStore store(options);
  const util::StatusOr<durable::RecoveredState> recovered = store.recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "leaps-rollover: recover %s: %s\n",
                 options.dir.c_str(),
                 recovered.status().to_string().c_str());
    return 1;
  }
  const durable::RecoveredState& r = *recovered;
  std::printf("durable dir:        %s\n", options.dir.c_str());
  std::printf("snapshot:           %s\n",
              r.snapshot_found ? "found" : "absent (cold start)");
  std::printf("incumbent detector: %s\n",
              r.detector != nullptr
                  ? (r.detector->continual() != nullptr
                         ? "recovered (with continual state)"
                         : "recovered")
                  : "none");
  std::printf("pending windows:    %zu\n", r.pending_windows.size());
  std::printf("quarantined:        %zu\n", r.quarantined.size());
  std::printf("accounting:         ingested=%llu processed=%llu "
              "dropped=%llu quarantined=%llu\n",
              static_cast<unsigned long long>(r.accounting.ingested),
              static_cast<unsigned long long>(r.accounting.processed),
              static_cast<unsigned long long>(r.accounting.dropped),
              static_cast<unsigned long long>(r.accounting.quarantined));
  std::printf("journal:            last_lsn=%llu replayed=%llu "
              "skipped=%llu%s\n",
              static_cast<unsigned long long>(r.last_lsn),
              static_cast<unsigned long long>(r.replayed),
              static_cast<unsigned long long>(r.skipped),
              r.torn_tail ? " (torn tail truncated)" : "");
  if (r.torn_tail) {
    std::printf("torn tail:          %s\n", r.torn_reason.c_str());
  }
  std::size_t drift_observes = 0, drift_triggers = 0, drift_retrains = 0;
  for (const durable::DriftReplayOp& op : r.drift_ops) {
    switch (op.kind) {
      case durable::DriftReplayOp::Kind::kObserve: ++drift_observes; break;
      case durable::DriftReplayOp::Kind::kTrigger: ++drift_triggers; break;
      case durable::DriftReplayOp::Kind::kRetrain: ++drift_retrains; break;
    }
  }
  std::printf("drift:              %s; journal ops: %zu observe, "
              "%zu trigger, %zu retrain\n",
              r.drift.empty() ? "no monitor state in snapshot"
                              : "monitor state recovered",
              drift_observes, drift_triggers, drift_retrains);
  if (!detector_out.empty()) {
    if (r.detector == nullptr) {
      std::fprintf(stderr,
                   "leaps-rollover: no incumbent to save (cold start)\n");
      return 1;
    }
    core::save_detector_file(*r.detector, detector_out);
    std::printf("incumbent saved:    %s\n", detector_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv, kUsage);
  double admit_floor = 0.25;
  std::size_t retrain_events = 1;
  bool no_cold = false;
  online::RolloverGates gates;
  args.option("--admit-floor", &admit_floor);
  args.option("--retrain-events", &retrain_events);
  args.flag("--no-cold-baseline", &no_cold);
  args.option("--shadow-min-windows", &gates.min_windows);
  args.option("--shadow-max-disagree", &gates.max_disagreement);
  args.option("--shadow-max-latency", &gates.max_latency_ratio);
  double drift_p = 0.01;
  args.option("--drift-p", &drift_p);
  std::string detector_out;
  args.option("--detector-out", &detector_out);
  const std::vector<std::string> pos = args.parse(2, 4);

  try {
    const std::string& sub = pos[0];
    if (sub == "retrain") {
      if (pos.size() != 4) args.usage_error("%s", "retrain takes 3 arguments");
      return cmd_retrain(pos, admit_floor, !no_cold);
    }
    if (sub == "shadow") {
      if (pos.size() != 4) args.usage_error("%s", "shadow takes 3 arguments");
      return cmd_shadow(pos, gates);
    }
    if (sub == "drill") {
      if (pos.size() != 3) args.usage_error("%s", "drill takes 2 arguments");
      return cmd_drill(pos);
    }
    if (sub == "diff") {
      if (pos.size() != 4) args.usage_error("%s", "diff takes 3 arguments");
      return cmd_diff(pos);
    }
    if (sub == "drift") {
      if (pos.size() != 4) args.usage_error("%s", "drift takes 3 arguments");
      return cmd_drift(pos, drift_p);
    }
    if (sub == "recover") {
      if (pos.size() != 2) args.usage_error("%s", "recover takes 1 argument");
      return cmd_recover(pos, detector_out);
    }
    args.usage_error("unknown subcommand '%s'", sub.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-rollover: %s\n", e.what());
    return 1;
  }
  return 2;
}
