// leaps_top — render the live status snapshot leaps-serve maintains with
// --status-json as a compact operator dashboard.
//
// The reader is deliberately a tolerant field scanner, not a JSON parser:
// it greps scoped `"key":value` pairs out of the document, so it keeps
// working when newer writers add fields, and it needs nothing beyond the
// standard library. The file itself is atomically replaced by the writer,
// so every read sees a complete document.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "cli.h"

namespace {

using namespace leaps;

constexpr const char* kUsage =
    "usage: leaps-top <status.json>\n"
    "  renders the status snapshot written by leaps-serve --status-json.\n"
    "  --once          render one frame and exit (for scripts and CI)\n"
    "  --interval S    refresh every S seconds (default 2)\n"
    "exit: 0 ok, 1 unreadable status file, 2 usage\n";

/// Body of the top-level object `"key":{...}` ("" when absent).
std::string object_of(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) return "";
  std::size_t pos = at + needle.size() - 1;
  int depth = 0;
  for (std::size_t i = pos; i < doc.size(); ++i) {
    if (doc[i] == '{') ++depth;
    if (doc[i] == '}' && --depth == 0) {
      return doc.substr(pos, i - pos + 1);
    }
  }
  return "";
}

/// Scalar after `"key":` inside `scope` (numbers, true/false; "?" absent).
std::string scalar_of(const std::string& scope, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = scope.find(needle);
  if (at == std::string::npos) return "?";
  std::size_t pos = at + needle.size();
  std::size_t end = pos;
  while (end < scope.size() && scope[end] != ',' && scope[end] != '}' &&
         scope[end] != ']') {
    ++end;
  }
  std::string v = scope.substr(pos, end - pos);
  if (!v.empty() && v.front() == '"') v = v.substr(1, v.size() - 2);
  return v;
}

bool render(const std::string& path, bool clear) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "leaps-top: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string doc = buf.str();

  const std::string sessions = object_of(doc, "sessions");
  const std::string events = object_of(doc, "events");
  const std::string windows = object_of(doc, "windows");
  const std::string queues = object_of(doc, "queues");
  const std::string decision = object_of(doc, "decision_value");
  const std::string online = object_of(doc, "online");
  const std::string drift = object_of(doc, "drift");
  const std::string audit = object_of(doc, "audit");

  if (clear) std::printf("\033[H\033[2J");
  std::printf("leaps-top — %s\n", path.c_str());
  std::printf("sessions  active=%s opened=%s closed=%s quarantined=%s "
              "evicted=%s\n",
              scalar_of(sessions, "active").c_str(),
              scalar_of(sessions, "opened").c_str(),
              scalar_of(sessions, "closed").c_str(),
              scalar_of(sessions, "quarantined").c_str(),
              scalar_of(sessions, "evicted").c_str());
  std::printf("events    ingested=%s processed=%s dropped=%s rejected=%s "
              "shed=%s\n",
              scalar_of(events, "ingested").c_str(),
              scalar_of(events, "processed").c_str(),
              scalar_of(events, "dropped").c_str(),
              scalar_of(events, "rejected").c_str(),
              scalar_of(events, "shed").c_str());
  std::printf("windows   scored=%s benign=%s malicious=%s\n",
              scalar_of(windows, "scored").c_str(),
              scalar_of(windows, "benign").c_str(),
              scalar_of(windows, "malicious").c_str());
  std::printf("queues    high-water=%s batches=%s shed-activations=%s "
              "wait-p99-us=%s\n",
              scalar_of(queues, "high_water").c_str(),
              scalar_of(queues, "batches").c_str(),
              scalar_of(queues, "shed_activations").c_str(),
              scalar_of(queues, "wait_p99_us").c_str());
  std::printf("decision  count=%s q50=%s q90=%s q99=%s min=%s max=%s\n",
              scalar_of(decision, "count").c_str(),
              scalar_of(decision, "q50").c_str(),
              scalar_of(decision, "q90").c_str(),
              scalar_of(decision, "q99").c_str(),
              scalar_of(decision, "min").c_str(),
              scalar_of(decision, "max").c_str());
  if (online.empty()) {
    std::printf("online    (not running)\n");
  } else {
    std::printf("online    phase=%s cycles=%s failures=%s promotions=%s "
                "rollbacks=%s drift-retrains=%s\n",
                scalar_of(online, "phase").c_str(),
                scalar_of(online, "retrain_cycles").c_str(),
                scalar_of(online, "retrain_failures").c_str(),
                scalar_of(online, "promotions").c_str(),
                scalar_of(online, "rollbacks").c_str(),
                scalar_of(online, "drift_retrains").c_str());
  }
  if (drift.empty() || scalar_of(drift, "enabled") == "false") {
    std::printf("drift     (disabled)\n");
  } else {
    std::printf("drift     gen=%s ref=%s%s live=%s ks=%s p=%s triggers=%s "
                "pending=%s\n",
                scalar_of(drift, "generation").c_str(),
                scalar_of(drift, "reference_size").c_str(),
                scalar_of(drift, "reference_frozen") == "true" ? "(frozen)"
                                                               : "",
                scalar_of(drift, "live_size").c_str(),
                scalar_of(drift, "ks").c_str(),
                scalar_of(drift, "p_value").c_str(),
                scalar_of(drift, "triggers").c_str(),
                scalar_of(drift, "trigger_pending").c_str());
  }
  if (audit.empty()) {
    std::printf("audit     (off)\n");
  } else {
    std::printf("audit     written=%s dropped=%s\n",
                scalar_of(audit, "written").c_str(),
                scalar_of(audit, "dropped").c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv, kUsage);
  bool once = false;
  std::size_t interval = 2;
  args.flag("--once", &once);
  args.option("--interval", &interval);
  const std::vector<std::string> pos = args.parse(1);
  if (interval == 0) interval = 1;

  if (once) return render(pos[0], /*clear=*/false) ? 0 : 1;
  for (;;) {
    if (!render(pos[0], /*clear=*/true)) return 1;
    std::this_thread::sleep_for(std::chrono::seconds(interval));
  }
}
