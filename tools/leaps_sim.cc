// leaps_sim — generate raw event-trace logs for a scenario.
//
// Usage:
//   leaps_sim <scenario|app_payload_srctrojan> <output-dir>
//             [--events N] [--seed S]
//
// Writes three raw logs (the ETL-file stand-ins) into <output-dir>:
//   benign.log  mixed.log  malicious.log
// plus truth.txt with the mixed log's per-event ground truth (for
// experimentation only; a real tracer cannot produce it).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/raw_log.h"
#include "util/strings.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: leaps_sim <scenario> <output-dir> [--events N] [--seed S] "
      "[--binary]\n"
      "       scenario: a Table-I dataset name (e.g. winscp_reverse_tcp),\n"
      "       or <app>_<payload>_srctrojan for a source-level trojan.\n"
      "known scenarios:\n");
  for (const auto& s : leaps::sim::table1_scenarios()) {
    std::fprintf(stderr, "  %s\n", s.name.c_str());
  }
  return 2;
}

void write_log(const leaps::trace::RawLog& log, const std::string& path,
               bool binary) {
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) {
    std::fprintf(stderr, "leaps_sim: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  if (binary) {
    leaps::trace::write_raw_log_binary(log, os);
  } else {
    leaps::trace::write_raw_log(log, os);
  }
  std::printf("wrote %-30s (%zu events%s)\n", path.c_str(),
              log.events.size(), binary ? ", binary" : "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  if (argc < 3) return usage();
  const std::string scenario = argv[1];
  const std::string dir = argv[2];

  sim::SimConfig config;
  bool binary = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[++i]);
      if (n < 100) return usage();
      config.benign_events = static_cast<std::size_t>(n);
      config.mixed_events = static_cast<std::size_t>(n) * 3 / 4;
      config.malicious_events = static_cast<std::size_t>(n) / 2;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--binary") == 0) {
      binary = true;
    } else {
      return usage();
    }
  }

  sim::ScenarioLogs logs;
  const std::string suffix = "_srctrojan";
  if (scenario.size() > suffix.size() &&
      scenario.compare(scenario.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    const std::string head =
        scenario.substr(0, scenario.size() - suffix.size());
    const auto sep = head.rfind('_');
    if (sep == std::string::npos) return usage();
    try {
      logs = sim::generate_source_trojan_scenario(
          head.substr(0, sep), head.substr(sep + 1), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps_sim: %s\n", e.what());
      return 2;
    }
  } else {
    try {
      logs = sim::generate_scenario(sim::find_scenario(scenario), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps_sim: %s\n", e.what());
      return 2;
    }
  }

  write_log(logs.benign, dir + "/benign.log", binary);
  write_log(logs.mixed, dir + "/mixed.log", binary);
  write_log(logs.malicious, dir + "/malicious.log", binary);
  {
    std::ofstream os(dir + "/truth.txt");
    for (const bool b : logs.mixed_truth) os << (b ? '1' : '0') << '\n';
  }
  std::printf("scenario %s, seed %llu\n", logs.spec.name.c_str(),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
