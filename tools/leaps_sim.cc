// leaps_sim — generate raw event-trace logs for a scenario.
//
// Usage:
//   leaps_sim <scenario|app_payload_srctrojan> <output-dir>
//             [--events N] [--seed S]
//
// Writes three raw logs (the ETL-file stand-ins) into <output-dir>:
//   benign.log  mixed.log  malicious.log
// plus truth.txt with the mixed log's per-event ground truth (for
// experimentation only; a real tracer cannot produce it).
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.h"
#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/raw_log.h"
#include "util/strings.h"

namespace {

std::string usage_text() {
  std::string text =
      "usage: leaps-sim <scenario> <output-dir> [--events N] [--seed S] "
      "[--binary]\n"
      "       scenario: a Table-I dataset name (e.g. winscp_reverse_tcp),\n"
      "       or <app>_<payload>_srctrojan for a source-level trojan.\n"
      "  --events N  benign-log events, N >= 100 (mixed = 3N/4, "
      "malicious = N/2)\n"
      "  --seed S    simulation seed\n"
      "  --binary    write the compact binary log format\n"
      "known scenarios:\n";
  for (const auto& s : leaps::sim::table1_scenarios()) {
    text += "  " + s.name + "\n";
  }
  return text;
}

void write_log(const leaps::trace::RawLog& log, const std::string& path,
               bool binary) {
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) {
    std::fprintf(stderr, "leaps-sim: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  if (binary) {
    leaps::trace::write_raw_log_binary(log, os);
  } else {
    leaps::trace::write_raw_log(log, os);
  }
  std::printf("wrote %-30s (%zu events%s)\n", path.c_str(),
              log.events.size(), binary ? ", binary" : "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv, usage_text());
  sim::SimConfig config;
  std::size_t events = 0;
  std::size_t seed = static_cast<std::size_t>(config.seed);
  bool binary = false;
  args.option("--events", &events);
  args.option("--seed", &seed);
  args.flag("--binary", &binary);
  const std::vector<std::string> pos = args.parse(2, 2);
  const std::string scenario = pos[0];
  const std::string dir = pos[1];

  config.seed = static_cast<std::uint64_t>(seed);
  if (events != 0) {
    if (events < 100) args.usage_error("%s must be >= 100", "--events");
    config.benign_events = events;
    config.mixed_events = events * 3 / 4;
    config.malicious_events = events / 2;
  }

  sim::ScenarioLogs logs;
  const std::string suffix = "_srctrojan";
  if (scenario.size() > suffix.size() &&
      scenario.compare(scenario.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    const std::string head =
        scenario.substr(0, scenario.size() - suffix.size());
    const auto sep = head.rfind('_');
    if (sep == std::string::npos) {
      args.usage_error("bad srctrojan scenario '%s'", scenario.c_str());
    }
    try {
      logs = sim::generate_source_trojan_scenario(
          head.substr(0, sep), head.substr(sep + 1), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-sim: %s\n", e.what());
      return 2;
    }
  } else {
    try {
      logs = sim::generate_scenario(sim::find_scenario(scenario), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-sim: %s\n", e.what());
      return 2;
    }
  }

  write_log(logs.benign, dir + "/benign.log", binary);
  write_log(logs.mixed, dir + "/mixed.log", binary);
  write_log(logs.malicious, dir + "/malicious.log", binary);
  {
    std::ofstream os(dir + "/truth.txt");
    for (const bool b : logs.mixed_truth) os << (b ? '1' : '0') << '\n';
  }
  std::printf("scenario %s, seed %llu\n", logs.spec.name.c_str(),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
