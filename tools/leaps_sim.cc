// leaps_sim — generate raw event-trace logs for a scenario.
//
// Usage:
//   leaps_sim <scenario|app_payload_srctrojan|campaign_*> <output-dir>
//             [--events N] [--seed S] [--binary|--auditd]
//
// Writes three raw logs (the ETL-file stand-ins) into <output-dir> in
// the text, binary, or auditd dialect:
//   benign.log  mixed.log  malicious.log
// plus truth.txt with the mixed log's per-event ground truth (for
// experimentation only; a real tracer cannot produce it). campaign_*
// datasets additionally write stages.txt (per-event kill-chain stage
// index and the per-stage dwell windows).
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.h"
#include "sim/campaign.h"
#include "sim/scenario.h"
#include "trace/auditd_log.h"
#include "trace/binary_log.h"
#include "trace/raw_log.h"
#include "util/strings.h"

namespace {

std::string usage_text() {
  std::string text =
      "usage: leaps-sim <scenario> <output-dir> [--events N] [--seed S] "
      "[--binary] [--auditd]\n"
      "       scenario: a Table-I dataset name (e.g. winscp_reverse_tcp),\n"
      "       <app>_<payload>_srctrojan for a source-level trojan,\n"
      "       or a campaign_* multi-stage APT dataset.\n"
      "  --events N  benign-log events, N >= 100 (mixed = 3N/4, "
      "malicious = N/2)\n"
      "  --seed S    simulation seed\n"
      "  --binary    write the compact binary log format\n"
      "  --auditd    write the Linux auditd/provenance dialect\n"
      "known scenarios:\n";
  for (const auto& s : leaps::sim::table1_scenarios()) {
    text += "  " + s.name + "\n";
  }
  for (const auto& c : leaps::sim::campaign_catalog()) {
    text += "  " + c.name + "\n";
  }
  return text;
}

enum class Dialect { kText, kBinary, kAuditd };

void write_log(const leaps::trace::RawLog& log, const std::string& path,
               Dialect dialect) {
  std::ofstream os(path, dialect == Dialect::kBinary ? std::ios::binary
                                                     : std::ios::out);
  if (!os) {
    std::fprintf(stderr, "leaps-sim: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const char* tag = "";
  switch (dialect) {
    case Dialect::kText:
      leaps::trace::write_raw_log(log, os);
      break;
    case Dialect::kBinary:
      leaps::trace::write_raw_log_binary(log, os);
      tag = ", binary";
      break;
    case Dialect::kAuditd:
      leaps::trace::write_raw_log_auditd(log, os);
      tag = ", auditd";
      break;
  }
  std::printf("wrote %-30s (%zu events%s)\n", path.c_str(),
              log.events.size(), tag);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv, usage_text());
  sim::SimConfig config;
  std::size_t events = 0;
  std::size_t seed = static_cast<std::size_t>(config.seed);
  bool binary = false;
  bool auditd = false;
  args.option("--events", &events);
  args.option("--seed", &seed);
  args.flag("--binary", &binary);
  args.flag("--auditd", &auditd);
  const std::vector<std::string> pos = args.parse(2, 2);
  const std::string scenario = pos[0];
  const std::string dir = pos[1];
  if (binary && auditd) {
    args.usage_error("%s and --auditd are mutually exclusive", "--binary");
  }
  const Dialect dialect = binary ? Dialect::kBinary
                         : auditd ? Dialect::kAuditd
                                  : Dialect::kText;

  config.seed = static_cast<std::uint64_t>(seed);
  if (events != 0) {
    if (events < 100) args.usage_error("%s must be >= 100", "--events");
    config.benign_events = events;
    config.mixed_events = events * 3 / 4;
    config.malicious_events = events / 2;
  }

  if (scenario.rfind("campaign_", 0) == 0) {
    sim::CampaignLogs logs;
    try {
      logs = sim::generate_campaign(sim::find_campaign(scenario), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-sim: %s\n", e.what());
      return 2;
    }
    write_log(logs.benign, dir + "/benign.log", dialect);
    write_log(logs.mixed, dir + "/mixed.log", dialect);
    write_log(logs.malicious, dir + "/malicious.log", dialect);
    {
      std::ofstream os(dir + "/truth.txt");
      for (const bool b : logs.mixed_truth) os << (b ? '1' : '0') << '\n';
    }
    {
      // Per-event stage index of the mixed log (-1 = benign), preceded by
      // one comment line per stage naming its dwell window.
      std::ofstream os(dir + "/stages.txt");
      for (std::size_t s = 0; s < logs.spec.stages.size(); ++s) {
        os << "# stage " << s << " "
           << sim::campaign_stage_name(logs.spec.stages[s].stage) << " ["
           << logs.dwell[s].first << "," << logs.dwell[s].second << ")\n";
      }
      for (const int stage : logs.mixed_stage) os << stage << '\n';
    }
    std::printf("campaign %s (%zu stages%s), seed %llu\n",
                logs.spec.name.c_str(), logs.spec.stages.size(),
                logs.spec.lotl ? ", living-off-the-land" : "",
                static_cast<unsigned long long>(config.seed));
    return 0;
  }

  sim::ScenarioLogs logs;
  const std::string suffix = "_srctrojan";
  if (scenario.size() > suffix.size() &&
      scenario.compare(scenario.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    const std::string head =
        scenario.substr(0, scenario.size() - suffix.size());
    const auto sep = head.rfind('_');
    if (sep == std::string::npos) {
      args.usage_error("bad srctrojan scenario '%s'", scenario.c_str());
    }
    try {
      logs = sim::generate_source_trojan_scenario(
          head.substr(0, sep), head.substr(sep + 1), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-sim: %s\n", e.what());
      return 2;
    }
  } else {
    try {
      logs = sim::generate_scenario(sim::find_scenario(scenario), config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-sim: %s\n", e.what());
      return 2;
    }
  }

  write_log(logs.benign, dir + "/benign.log", dialect);
  write_log(logs.mixed, dir + "/mixed.log", dialect);
  write_log(logs.malicious, dir + "/malicious.log", dialect);
  {
    std::ofstream os(dir + "/truth.txt");
    for (const bool b : logs.mixed_truth) os << (b ? '1' : '0') << '\n';
  }
  std::printf("scenario %s, seed %llu\n", logs.spec.name.c_str(),
              static_cast<unsigned long long>(config.seed));
  return 0;
}
