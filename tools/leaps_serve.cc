// leaps_serve — replay raw logs as concurrent streaming sessions through
// the multi-tenant detection server (src/serve/).
//
// Each input log becomes an independent (host, pid) session; a producer
// thread per session feeds its events — optionally rate-limited, as a live
// tracer would deliver them — into the server's sharded bounded queues,
// where the fixed worker pool classifies windows online. Prints one
// verdict line per session plus a final metrics report.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "attrib/matcher.h"
#include "attrib/signature.h"
#include "cli.h"
#include "core/persist.h"
#include "durable/store.h"
#include "ingest.h"
#include "online/manager.h"
#include "online/status.h"
#include "serve/audit.h"
#include "serve/server.h"
#include "trace/partition.h"
#include "util/fault.h"

namespace {

using namespace leaps;

constexpr const char* kUsage =
    "usage: leaps-serve <detector> <trace.log> [more.log ...]\n"
    "  replays logs as concurrent streaming sessions against the detection\n"
    "  server (the paper's Testing Phase at serving scale).\n"
    "  --detector NAME=PATH  register an extra profile (repeatable); a\n"
    "                        session whose process name matches a profile\n"
    "                        uses it, everything else uses <detector>\n"
    "  --sessions N          concurrent sessions (default: one per log;\n"
    "                        logs are reused round-robin when N > logs)\n"
    "  --workers N           worker threads (default 4)\n"
    "  --rate R              events/sec per session (0 = unthrottled)\n"
    "  --queue-capacity N    per-shard queue capacity (default 4096)\n"
    "  --policy P            backpressure: block | drop-oldest\n"
    "  --batch N             worker drain batch size (default 128)\n"
    "  --coalesce N          events staged per session before one queue\n"
    "                        hand-off (default 1 = per-event; raise to\n"
    "                        amortize queue contention at fleet scale)\n"
    "  --session-shards N    session-table shards (default 64, pow2)\n"
    "  --threshold F         flagged fraction per session that makes the\n"
    "                        overall verdict suspicious (default 0.25)\n"
    "  --metrics-every S     dump metrics to stderr every S seconds\n"
    "  --breaker N           consecutive failures that quarantine a\n"
    "                        session (default 3, 0 disables)\n"
    "  --idle-ttl-ms N       evict sessions idle longer than N ms (0 off)\n"
    "  --shed-wait-us N      shed load when queue-wait p99 exceeds N us\n"
    "                        (0 off)\n"
    "  --fault SPEC          arm a fault point (repeatable):\n"
    "                        point:action:probability[:delay_us|:exit_code],\n"
    "                        action = throw | error | delay\n"
    "  --fault-seed N        deterministic seed for fault injection\n"
    "  --online              continuous learning for the default profile:\n"
    "                        fold benign windows into the CFG, retrain with\n"
    "                        a warm-started solver, shadow + promote\n"
    "  --online-replays R    replay the session set R times (default 1);\n"
    "                        the online control loop steps between rounds,\n"
    "                        so R >= 3 exercises a full retrain -> shadow\n"
    "                        -> promote cycle deterministically\n"
    "  --retrain-events N    benign events that trigger a retrain\n"
    "                        (default 2048)\n"
    "  --durable DIR         crash-safe online state (requires --online):\n"
    "                        recover DIR on startup — the recovered\n"
    "                        incumbent replaces the detector file — then\n"
    "                        journal learnable windows and promotions and\n"
    "                        checkpoint atomically as the replay runs\n"
    "  --admit-floor F       CFG benignity below which a window is not\n"
    "                        learned from (default 0.25)\n"
    "  --shadow-min-windows N  verdict pairs before the rollover gates are\n"
    "                        consulted (default 64)\n"
    "  --shadow-max-disagree F max disagreement rate to promote\n"
    "                        (default 0.02)\n"
    "  --shadow-max-latency F  max shadow/active latency ratio to promote\n"
    "                        (default 3.0)\n"
    "  --drift               decision-value drift detection (requires\n"
    "                        --online): a two-sample KS test between the\n"
    "                        frozen reference window and the live window\n"
    "                        schedules a retrain when the distribution\n"
    "                        shifts\n"
    "  --drift-reference N   values that freeze the reference (default 256)\n"
    "  --drift-live N        live-window capacity (default 128)\n"
    "  --drift-min-live N    live values before the KS test runs\n"
    "                        (default 64)\n"
    "  --drift-p F           trigger when the KS p-value drops below F\n"
    "                        (default 0.01)\n"
    "  --attrib DIR          campaign attribution: load the *.sig library\n"
    "                        under DIR, collect flagged windows per\n"
    "                        session, and rank AttributionVerdicts (shown\n"
    "                        in the final report and --status-json)\n"
    "  --attrib-min-score F  hide verdicts scoring below F (default 0.2)\n"
    "  --audit-out FILE      verdict provenance: one JSONL record per\n"
    "                        anomalous window (decision value, top SV\n"
    "                        contributions, dominating CFG terms); '-' =\n"
    "                        stdout; drop-not-block under backpressure\n"
    "  --status-json FILE    atomically rewrite FILE with a live status\n"
    "                        snapshot (sessions, queues, drift, verdict\n"
    "                        mix) every --metrics-every seconds and on\n"
    "                        exit; `leaps-top FILE` renders it\n"
    "  --json                final metrics report as JSON\n"
    "  --verbose             print each malicious window as it is scored\n"
    "  --trace-out FILE      write a chrome://tracing span JSON\n"
    "  --profile             print per-stage timings to stderr\n"
    "  --metrics-out FILE    write the shared metric registry (serving +\n"
    "                        ingest counters); refreshed with\n"
    "                        --metrics-every, final on exit\n"
    "exit: 0 all sessions clean, 3 any suspicious, 1 error, 2 usage\n";

trace::PartitionedLog load_log(const std::string& path) {
  util::StatusOr<trace::PartitionedLog> log = cli::load_partitioned_log(path);
  if (!log.ok()) {
    std::fprintf(stderr, "leaps-serve: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    std::exit(1);
  }
  return *std::move(log);
}

/// Feeds one session's events, pacing to `rate` events/sec when positive.
void replay(serve::DetectionServer& server,
            const std::shared_ptr<serve::Session>& session,
            const trace::PartitionedLog& log, double rate) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  for (const trace::PartitionedEvent& event : log.events) {
    if (rate > 0.0 && sent % 64 == 0) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(sent) / rate));
      std::this_thread::sleep_until(due);
    }
    server.submit(session, event);
    ++sent;
  }
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv, kUsage);
  std::vector<std::string> extra_detectors;
  std::size_t sessions = 0;
  serve::ServerOptions options;
  double rate = 0.0;
  std::string policy = "block";
  double threshold = 0.25;
  std::size_t metrics_every = 0;
  std::size_t idle_ttl_ms = 0;
  std::size_t shed_wait_us = 0;
  std::vector<std::string> fault_specs;
  std::size_t fault_seed = 0;
  bool json = false;
  bool verbose = false;
  bool online = false;
  std::size_t online_replays = 1;
  online::OnlineOptions online_options;
  double admit_floor = online_options.accumulator.admit_floor;
  cli::ObsFlags obs_flags;
  args.option_list("--detector", &extra_detectors);
  args.option("--sessions", &sessions);
  args.option("--workers", &options.workers);
  args.option("--rate", &rate);
  args.option("--queue-capacity", &options.queue_capacity);
  args.option("--policy", &policy);
  args.option("--batch", &options.batch_size);
  args.option("--coalesce", &options.coalesce);
  args.option("--session-shards", &options.session_shards);
  args.option("--threshold", &threshold);
  args.option("--metrics-every", &metrics_every);
  args.option("--breaker", &options.circuit_breaker);
  args.option("--idle-ttl-ms", &idle_ttl_ms);
  args.option("--shed-wait-us", &shed_wait_us);
  args.option_list("--fault", &fault_specs);
  args.option("--fault-seed", &fault_seed);
  args.flag("--online", &online);
  std::string durable_dir;
  args.option("--durable", &durable_dir);
  bool drift = false;
  args.flag("--drift", &drift);
  args.option("--drift-reference", &online_options.drift.reference_target);
  args.option("--drift-live", &online_options.drift.live_window);
  args.option("--drift-min-live", &online_options.drift.min_live);
  args.option("--drift-p", &online_options.drift.p_threshold);
  std::string audit_out;
  args.option("--audit-out", &audit_out);
  std::string attrib_dir;
  double attrib_min_score = 0.2;
  args.option("--attrib", &attrib_dir);
  args.option("--attrib-min-score", &attrib_min_score);
  std::string status_json;
  args.option("--status-json", &status_json);
  args.option("--online-replays", &online_replays);
  args.option("--retrain-events", &online_options.retrain.min_new_events);
  args.option("--admit-floor", &admit_floor);
  args.option("--shadow-min-windows", &online_options.gates.min_windows);
  args.option("--shadow-max-disagree",
              &online_options.gates.max_disagreement);
  args.option("--shadow-max-latency",
              &online_options.gates.max_latency_ratio);
  args.flag("--json", &json);
  args.flag("--verbose", &verbose);
  obs_flags.add_to(args);
  const std::vector<std::string> pos = args.parse(2);
  obs_flags.activate();

  const auto parsed_policy = serve::parse_overflow_policy(policy);
  if (!parsed_policy.has_value()) {
    args.usage_error("bad --policy '%s'", policy.c_str());
  }
  options.overflow = *parsed_policy;
  if (options.workers == 0) args.usage_error("%s must be >= 1", "--workers");
  if (options.coalesce == 0) args.usage_error("%s must be >= 1", "--coalesce");
  if (drift && !online) args.usage_error("%s requires --online", "--drift");
  online_options.drift.enabled = drift;
  options.idle_ttl = std::chrono::milliseconds(idle_ttl_ms);
  options.shed_queue_wait_us = shed_wait_us;

  auto& injector = util::FaultInjector::instance();
  injector.set_seed(static_cast<std::uint64_t>(fault_seed));
  for (const std::string& spec : fault_specs) {
    if (!injector.arm_from_spec(spec)) {
      args.usage_error("bad --fault '%s'", spec.c_str());
    }
  }

  try {
    // The audit log outlives the server (workers hold a raw pointer into
    // it until stop()), so it is constructed first and stopped last.
    std::unique_ptr<serve::AuditLog> audit;
    if (!audit_out.empty()) {
      serve::AuditOptions aopts;
      aopts.path = audit_out;
      audit = std::make_unique<serve::AuditLog>(aopts);
      const util::Status started = audit->start();
      if (!started.ok()) {
        std::fprintf(stderr, "leaps-serve: --audit-out %s: %s\n",
                     audit_out.c_str(), started.to_string().c_str());
        return 1;
      }
    }
    serve::DetectionServer server(options);
    if (audit != nullptr) server.set_audit_log(audit.get());
    // One scrape surface: the server's counters join the ingest/pipeline
    // metrics already living in the global registry, so --metrics-out
    // carries both. Held for the server's lifetime.
    const obs::MetricRegistry::Registration metrics_registration =
        server.metrics().register_with(obs::MetricRegistry::global());
    // Crash-safe online state: recover the durable directory before the
    // registry is populated — a recovered incumbent (a promotion the
    // previous process made before dying) outranks the detector file.
    std::unique_ptr<durable::DurableStore> durable_store;
    std::optional<durable::RecoveredState> recovered;
    if (!durable_dir.empty()) {
      if (!online) args.usage_error("%s requires --online", "--durable");
      durable::DurableOptions dopts;
      dopts.dir = durable_dir;
      durable_store = std::make_unique<durable::DurableStore>(dopts);
      const util::Status opened = durable_store->open();
      if (!opened.ok()) {
        std::fprintf(stderr, "leaps-serve: --durable %s: %s\n",
                     durable_dir.c_str(), opened.to_string().c_str());
        return 1;
      }
      util::StatusOr<durable::RecoveredState> rec = durable_store->recover();
      if (!rec.ok()) {
        std::fprintf(stderr, "leaps-serve: --durable %s: %s\n",
                     durable_dir.c_str(), rec.status().to_string().c_str());
        return 1;
      }
      recovered = *std::move(rec);
      std::fprintf(stderr,
                   "durable: recovered %s (incumbent=%s, %zu pending "
                   "windows, %zu quarantined, replayed=%llu skipped=%llu%s)\n",
                   durable_dir.c_str(),
                   recovered->detector != nullptr ? "yes" : "no",
                   recovered->pending_windows.size(),
                   recovered->quarantined.size(),
                   static_cast<unsigned long long>(recovered->replayed),
                   static_cast<unsigned long long>(recovered->skipped),
                   recovered->torn_tail ? ", torn tail truncated" : "");
    }
    if (recovered.has_value() && recovered->detector != nullptr) {
      server.registry().add("default", recovered->detector);
    } else {
      server.registry().load_file("default", pos[0]);
    }
    for (const std::string& spec : extra_detectors) {
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        args.usage_error("bad --detector '%s' (want NAME=PATH)",
                         spec.c_str());
      }
      server.registry().load_file(spec.substr(0, eq), spec.substr(eq + 1));
    }

    // Parse each distinct log once; sessions share the parsed copies.
    std::map<std::string, std::shared_ptr<const trace::PartitionedLog>> logs;
    for (std::size_t i = 1; i < pos.size(); ++i) {
      if (logs.count(pos[i]) == 0) {
        logs[pos[i]] = std::make_shared<const trace::PartitionedLog>(
            load_log(pos[i]));
      }
    }
    const std::size_t log_count = pos.size() - 1;
    if (sessions == 0) sessions = log_count;

    if (verbose) {
      server.set_verdict_sink([](const serve::VerdictRecord& v) {
        if (v.label == -1) {
          std::printf("MALICIOUS window %zu in session %s\n", v.window_index,
                      v.key.to_string().c_str());
        }
      });
    }
    // Campaign attribution: the signature library loads up front, the
    // attributor joins the window stream as an extra tap (leaving the
    // primary tap slot to the online manager).
    std::unique_ptr<attrib::SignatureLibrary> signatures;
    std::unique_ptr<attrib::FleetAttributor> attributor;
    if (!attrib_dir.empty()) {
      signatures = std::make_unique<attrib::SignatureLibrary>();
      const util::Status loaded = signatures->load_dir(attrib_dir);
      if (!loaded.ok()) {
        std::fprintf(stderr, "leaps-serve: --attrib %s: %s\n",
                     attrib_dir.c_str(), loaded.to_string().c_str());
        return 1;
      }
      attributor = std::make_unique<attrib::FleetAttributor>(
          signatures.get(), attrib_min_score);
      attrib::FleetAttributor* a = attributor.get();
      server.add_window_tap(
          [a](const serve::SessionKey& key, std::size_t window_index,
              int label, double decision_value,
              const trace::PartitionedEvent* events, std::size_t count) {
            a->observe(key, window_index, label, decision_value, events,
                       count);
          });
    }
    // The online manager hooks the window tap, so it must exist before
    // start(). It is stepped deterministically between replay rounds
    // (poll_once) instead of on its own thread — replay is a bounded
    // drive, not an open-ended service.
    std::unique_ptr<online::OnlineManager> manager;
    if (online) {
      online_options.profile = "default";
      online_options.accumulator.admit_floor = admit_floor;
      online_options.durable = durable_store.get();
      manager = std::make_unique<online::OnlineManager>(&server,
                                                        online_options);
      manager->install();
      if (recovered.has_value()) manager->restore(*recovered);
    }
    server.start();

    const online::StatusInputs status_inputs{&server, manager.get(),
                                             audit.get(), attributor.get()};
    const auto refresh_status = [&status_json, &status_inputs] {
      if (status_json.empty()) return;
      const util::Status status =
          online::write_status_json(status_json, status_inputs);
      if (!status.ok()) {
        std::fprintf(stderr, "leaps-serve: --status-json %s: %s\n",
                     status_json.c_str(), status.to_string().c_str());
      }
    };
    refresh_status();  // an empty-but-valid document from second zero

    std::atomic<bool> done{false};
    std::thread metrics_thread;
    if (metrics_every > 0) {
      metrics_thread = std::thread(
          [&server, &done, metrics_every, &obs_flags, &refresh_status] {
            while (!done.load()) {
              std::this_thread::sleep_for(
                  std::chrono::seconds(metrics_every));
              if (done.load()) break;
              std::fprintf(stderr, "%s",
                           server.metrics().snapshot().to_text().c_str());
              obs_flags.write_metrics();  // keep --metrics-out fresh
              refresh_status();
            }
          });
    }

    // One producer per session; logs reused round-robin beyond log_count.
    struct Replay {
      serve::SessionKey key;
      std::string path;
      std::shared_ptr<const trace::PartitionedLog> log;
      std::shared_ptr<serve::Session> session;
    };
    std::vector<Replay> replays;
    replays.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) {
      Replay r;
      r.path = pos[1 + s % log_count];
      r.log = logs.at(r.path);
      r.key = serve::SessionKey{"replay-" + std::to_string(s),
                                static_cast<std::uint32_t>(1000 + s)};
      const std::string profile =
          server.registry().contains(r.log->process_name)
              ? r.log->process_name
              : "default";
      r.session = server.open_session(r.key, profile);
      replays.push_back(std::move(r));
    }

    const auto start = std::chrono::steady_clock::now();
    const std::size_t rounds = std::max<std::size_t>(1, online_replays);
    for (std::size_t round = 0; round < rounds; ++round) {
      std::vector<std::thread> producers;
      producers.reserve(replays.size());
      for (const Replay& r : replays) {
        producers.emplace_back([&server, &r, rate] {
          replay(server, r.session, *r.log, rate);
        });
      }
      for (std::thread& p : producers) p.join();
      server.drain();
      if (manager != nullptr) {
        // One control-loop step per drained round: round N's benign
        // windows trigger the retrain, round N+1's traffic feeds the
        // shadow comparison, and the step after that promotes or rolls
        // back — all without wall-clock dependence.
        manager->poll_once();
        if (verbose) {
          const online::OnlineReport r = manager->report();
          std::fprintf(stderr,
                       "online round %zu: phase=%s cycles=%llu "
                       "promotions=%llu rollbacks=%llu\n",
                       round + 1, r.phase.c_str(),
                       static_cast<unsigned long long>(r.retrain_cycles),
                       static_cast<unsigned long long>(r.promotions),
                       static_cast<unsigned long long>(r.rollbacks));
        }
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    done.store(true);
    if (metrics_thread.joinable()) metrics_thread.join();

    int rc = 0;
    for (const Replay& r : replays) {
      const auto report = server.close_session(r.key);
      if (!report.has_value()) continue;
      const bool suspicious = report->malicious_fraction > threshold;
      if (suspicious) rc = 3;
      std::printf(
          "session %-12s %-28s profile=%s events=%zu windows=%zu "
          "malicious=%zu (%.1f%%) %s\n",
          report->key.to_string().c_str(), r.path.c_str(),
          report->profile.c_str(), report->events_seen, report->windows,
          report->malicious_windows, 100.0 * report->malicious_fraction,
          report->quarantined ? "QUARANTINED"
                              : (suspicious ? "SUSPICIOUS" : "clean"));
    }

    if (manager != nullptr) {
      // Concludes an in-flight shadow by its evidence so far (promote
      // only on a gate pass), so the final metrics and report reflect a
      // settled state.
      manager->stop();
      const online::OnlineReport orep = manager->report();
      std::printf(
          "online: cycles=%llu failures=%llu promotions=%llu "
          "rollbacks=%llu\n",
          static_cast<unsigned long long>(orep.retrain_cycles),
          static_cast<unsigned long long>(orep.retrain_failures),
          static_cast<unsigned long long>(orep.promotions),
          static_cast<unsigned long long>(orep.rollbacks));
      std::printf(
          "online: windows observed=%llu admitted=%llu rejected=%llu "
          "cfg-edges-added=%llu\n",
          static_cast<unsigned long long>(orep.accumulator.windows_observed),
          static_cast<unsigned long long>(orep.accumulator.windows_admitted),
          static_cast<unsigned long long>(orep.accumulator.windows_rejected),
          static_cast<unsigned long long>(orep.accumulator.edges_added));
      std::printf(
          "online: last retrain warm=%llu cold=%llu iterations "
          "(saved=%llu total)\n",
          static_cast<unsigned long long>(orep.last_warm_iterations),
          static_cast<unsigned long long>(orep.last_cold_iterations),
          static_cast<unsigned long long>(orep.warm_iterations_saved));
      std::printf(
          "online: shadow compared=%llu disagreements=%llu (rate %.4f, "
          "latency ratio %.2f)\n",
          static_cast<unsigned long long>(orep.shadow.compared),
          static_cast<unsigned long long>(orep.shadow.disagreements),
          orep.shadow.disagreement_rate(), orep.shadow.latency_ratio());
      if (orep.drift.enabled) {
        std::printf(
            "online: drift generation=%u observed=%llu p=%.6f ks=%.6f "
            "triggers=%llu drift-retrains=%llu trigger-lsn=%llu\n",
            orep.drift.generation,
            static_cast<unsigned long long>(orep.drift.observed),
            orep.drift.p_value, orep.drift.ks_statistic,
            static_cast<unsigned long long>(orep.drift.triggers),
            static_cast<unsigned long long>(orep.drift_retrains),
            static_cast<unsigned long long>(orep.last_drift_trigger_lsn));
      }
      if (!orep.last_error.empty()) {
        std::fprintf(stderr, "online: last error: %s\n",
                     orep.last_error.c_str());
      }
    }
    if (attributor != nullptr) {
      for (const auto& s : attributor->snapshot()) {
        for (const attrib::AttributionVerdict& v : s.verdicts) {
          std::printf(
              "AttributionVerdict session=%s signature=%s score=%.6f "
              "nodes=%zu/%zu edges=%zu/%zu windows=[%zu,%zu]\n",
              s.key.to_string().c_str(), v.signature.c_str(), v.score,
              v.nodes_matched, v.nodes_total, v.edges_satisfied,
              v.edges_total, v.first_window, v.last_window);
        }
      }
      std::printf("attribution: sessions=%zu flagged=%llu signatures=%zu\n",
                  attributor->sessions(),
                  static_cast<unsigned long long>(attributor->flagged_total()),
                  signatures->size());
    }
    if (audit != nullptr) {
      audit->stop();  // flush the queue before the summary line
      std::printf("audit: records=%llu dropped=%llu -> %s\n",
                  static_cast<unsigned long long>(audit->written()),
                  static_cast<unsigned long long>(audit->dropped()),
                  audit_out.c_str());
    }
    refresh_status();  // final settled snapshot
    const serve::MetricsSnapshot m = server.metrics().snapshot();
    obs_flags.finish();  // before stop(): the collector reads live metrics
    server.stop();
    if (json) {
      std::printf("%s\n", m.to_json().c_str());
    } else {
      std::printf("%s", m.to_text().c_str());
    }
    std::printf("replayed %llu events over %zu sessions in %.2fs "
                "(%.0f events/sec, %zu workers)\n",
                static_cast<unsigned long long>(m.events_processed),
                replays.size(), elapsed.count(),
                elapsed.count() > 0
                    ? static_cast<double>(m.events_processed) /
                          elapsed.count()
                    : 0.0,
                options.workers);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-serve: %s\n", e.what());
    obs_flags.finish();
    return 1;
  }
}
