// Shared command-line plumbing for the leaps tools.
//
// Every tool gets the same behavior for free:
//   --help / -h        prints the usage text, exits 0
//   --version          prints version / git SHA / build config, exits 0
//   --name <value>     typed value options with diagnostics on bad numbers
//   unknown options    "<tool>: unknown option '--x' (try --help)", exit 2
//   wrong positionals  usage to stderr, exit 2
//
// ObsFlags adds the shared observability surface (--trace-out, --profile,
// --metrics-out) — see DESIGN.md §8.
//
// Deliberately tiny and exit()-happy: these are leaf programs, and the
// pre-existing exit-code contract (0 ok / 2 usage error) is load-bearing
// for the tools_workflow integration test and shell pipelines.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/parallel.h"

namespace leaps::cli {

class ArgParser {
 public:
  ArgParser(int argc, char** argv, std::string usage)
      : usage_(std::move(usage)) {
    const char* slash = std::strrchr(argv[0], '/');
    tool_ = slash != nullptr ? slash + 1 : argv[0];
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  const std::string& tool() const { return tool_; }

  /// Boolean option: present → *out = true.
  void flag(const char* name, bool* out) {
    flags_.push_back({name, out});
  }
  /// Value options; the value is the next argument.
  void option(const char* name, double* out) {
    doubles_.push_back({name, out});
  }
  void option(const char* name, std::size_t* out) {
    sizes_.push_back({name, out});
  }
  void option(const char* name, std::string* out) {
    strings_.push_back({name, out});
  }
  /// Repeatable string option (e.g. --detector name=path --detector ...).
  void option_list(const char* name, std::vector<std::string>* out) {
    string_lists_.push_back({name, out});
  }

  [[noreturn]] void usage_error(const char* fmt, const char* arg) const {
    std::fprintf(stderr, "%s: ", tool_.c_str());
    std::fprintf(stderr, fmt, arg);
    std::fprintf(stderr, " (try --help)\n");
    std::exit(2);
  }

  /// Parses everything. On --help prints the usage text and exits 0; on an
  /// unknown option, a bad value, or a positional count outside
  /// [min_positional, max_positional] prints a diagnostic and exits 2.
  /// Returns the positional arguments.
  std::vector<std::string> parse(
      std::size_t min_positional,
      std::size_t max_positional = std::numeric_limits<std::size_t>::max()) {
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a == "--help" || a == "-h") {
        std::printf("%s", usage_.c_str());
        std::exit(0);
      }
      if (a == "--version") {
        std::printf("%s (leaps) %s\ngit: %s  build: %s  sanitizer: %s\n",
                    tool_.c_str(), util::kVersion, util::kGitSha,
                    util::kBuildType, util::kSanitizer);
        std::exit(0);
      }
      if (a.size() < 2 || a[0] != '-' || a[1] != '-') {
        positional.push_back(a);
        continue;
      }
      if (!match_option(a, i)) {
        usage_error("unknown option '%s'", a.c_str());
      }
    }
    if (positional.size() < min_positional ||
        positional.size() > max_positional) {
      std::fprintf(stderr, "%s", usage_.c_str());
      std::exit(2);
    }
    return positional;
  }

 private:
  template <typename T>
  struct Spec {
    const char* name;
    T* out;
  };

  const std::string& value_of(const std::string& name, std::size_t& i) {
    if (i + 1 >= args_.size()) {
      usage_error("option '%s' needs a value", name.c_str());
    }
    return args_[++i];
  }

  bool match_option(const std::string& a, std::size_t& i) {
    for (const auto& s : flags_) {
      if (a == s.name) {
        *s.out = true;
        return true;
      }
    }
    for (const auto& s : doubles_) {
      if (a == s.name) {
        const std::string& v = value_of(a, i);
        char* end = nullptr;
        *s.out = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
          usage_error("bad number for '%s'", a.c_str());
        }
        return true;
      }
    }
    for (const auto& s : sizes_) {
      if (a == s.name) {
        const std::string& v = value_of(a, i);
        char* end = nullptr;
        const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
          usage_error("bad number for '%s'", a.c_str());
        }
        *s.out = static_cast<std::size_t>(n);
        return true;
      }
    }
    for (const auto& s : strings_) {
      if (a == s.name) {
        *s.out = value_of(a, i);
        return true;
      }
    }
    for (const auto& s : string_lists_) {
      if (a == s.name) {
        s.out->push_back(value_of(a, i));
        return true;
      }
    }
    return false;
  }

  std::string tool_;
  std::string usage_;
  std::vector<std::string> args_;
  std::vector<Spec<bool>> flags_;
  std::vector<Spec<double>> doubles_;
  std::vector<Spec<std::size_t>> sizes_;
  std::vector<Spec<std::string>> strings_;
  std::vector<Spec<std::vector<std::string>>> string_lists_;
};

/// The observability flags every tool shares:
///   --trace-out <file>    write a chrome://tracing / Perfetto trace JSON
///   --profile             print the aggregated per-stage profile to stderr
///   --metrics-out <file>  write the global metric registry on exit
///                         (.json → JSON, anything else → Prometheus text)
///
/// Usage: add_to(parser) before parse(), activate() right after (turns the
/// tracer on only when span output was requested — otherwise every
/// LEAPS_SPAN site stays a single relaxed load), finish() once on the way
/// out. leaps-serve additionally calls write_metrics() periodically.
///
/// Failures to open an output file are reported to stderr but never change
/// the tool's exit code: observability must not fail the run it observes.
class ObsFlags {
 public:
  void add_to(ArgParser& args) {
    args.option("--trace-out", &trace_out_);
    args.flag("--profile", &profile_);
    args.option("--metrics-out", &metrics_out_);
  }

  /// Enables the tracer iff spans will actually be consumed.
  void activate() const {
    if (!trace_out_.empty() || profile_) obs::Tracer::set_enabled(true);
  }

  bool metrics_requested() const { return !metrics_out_.empty(); }

  /// Writes the global registry to --metrics-out (truncating), so repeated
  /// calls keep the file fresh for a scraper. No-op without the flag.
  void write_metrics() const {
    if (metrics_out_.empty()) return;
    std::ofstream os(metrics_out_, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "warning: cannot write metrics to '%s'\n",
                   metrics_out_.c_str());
      return;
    }
    const auto& registry = obs::MetricRegistry::global();
    os << (wants_json(metrics_out_) ? registry.to_json()
                                    : registry.to_prometheus());
  }

  /// Emits everything that was requested. Call once, after the work.
  void finish() const {
    if (!trace_out_.empty()) {
      std::ofstream os(trace_out_, std::ios::trunc);
      if (!os) {
        std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                     trace_out_.c_str());
      } else {
        os << obs::Tracer::instance().chrome_trace_json();
      }
    }
    if (profile_) {
      std::fputs(obs::Tracer::instance().profile_text().c_str(), stderr);
    }
    write_metrics();
  }

 private:
  static bool wants_json(const std::string& path) {
    constexpr const char kExt[] = ".json";
    constexpr std::size_t n = sizeof(kExt) - 1;
    return path.size() >= n && path.compare(path.size() - n, n, kExt) == 0;
  }

  std::string trace_out_;
  std::string metrics_out_;
  bool profile_ = false;
};

/// The shared threading flag (see DESIGN.md §10):
///   --threads N   size of the training compute pool; 0 = auto (all
///                 hardware threads, or LEAPS_THREADS when set)
///
/// Usage mirrors ObsFlags: add_to(parser) before parse(), apply() right
/// after. Thread count never changes any computed number — the parallel
/// substrate guarantees bit-identical results for every N — only
/// wall-clock.
class ThreadsFlag {
 public:
  void add_to(ArgParser& args) { args.option("--threads", &threads_); }

  /// Configures the global pool. With the flag absent (0) this resolves
  /// the automatic default, which is also what lazy startup would do.
  void apply() const { util::Parallel::set_threads(threads_); }

  /// The usage-text line every tool shares.
  static constexpr const char* kUsage =
      "  --threads N          compute threads (default 0 = all hardware "
      "threads)\n";

 private:
  std::size_t threads_ = 0;
};

}  // namespace leaps::cli
