// leaps_stat — summarize a raw trace log (text or binary) before using it.
//
// Usage: leaps_stat <trace.log> [more.log ...]
#include <cstdio>

#include "cli.h"
#include "ingest.h"
#include "trace/log_stats.h"
#include "trace/partition.h"

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv,
                      "usage: leaps-stat <trace.log> [more.log ...]\n"
                      "  summarizes raw trace logs (text or binary; '-' "
                      "reads stdin).\n"
                      "  --trace-out FILE, --profile, --metrics-out FILE  "
                      "observability outputs\n" +
                      std::string(cli::ThreadsFlag::kUsage));
  cli::ObsFlags obs_flags;
  cli::ThreadsFlag threads_flag;
  obs_flags.add_to(args);
  threads_flag.add_to(args);
  const std::vector<std::string> logs = args.parse(1);
  obs_flags.activate();
  threads_flag.apply();
  int rc = 0;
  for (const std::string& path : logs) {
    const util::StatusOr<trace::PartitionedLog> log =
        cli::load_partitioned_log(path);
    if (!log.ok()) {
      std::fprintf(stderr, "leaps-stat: %s: %s\n", path.c_str(),
                   log.status().to_string().c_str());
      rc = 1;
      continue;
    }
    std::printf("== %s ==\n%s\n", path.c_str(),
                trace::compute_stats(*log).to_string().c_str());
  }
  obs_flags.finish();
  return rc;
}
