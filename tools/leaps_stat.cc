// leaps_stat — summarize a raw trace log (text or binary) before using it.
//
// Usage: leaps_stat <trace.log> [more.log ...]
#include <cstdio>
#include <fstream>

#include "cli.h"
#include "trace/binary_log.h"
#include "trace/log_stats.h"
#include "trace/parser.h"
#include "trace/partition.h"

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv,
                      "usage: leaps-stat <trace.log> [more.log ...]\n"
                      "  summarizes raw trace logs (text or binary).\n");
  const std::vector<std::string> logs = args.parse(1);
  int rc = 0;
  for (const std::string& path : logs) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "leaps-stat: cannot open %s\n", path.c_str());
      rc = 1;
      continue;
    }
    try {
      const trace::RawLog raw = trace::read_raw_log_any(is);
      const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
      const trace::PartitionedLog log =
          trace::StackPartitioner(t.log.process_name).partition(t.log);
      std::printf("== %s ==\n%s\n", path.c_str(),
                  trace::compute_stats(log).to_string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "leaps-stat: %s: %s\n", path.c_str(), e.what());
      rc = 1;
    }
  }
  return rc;
}
