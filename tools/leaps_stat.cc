// leaps_stat — summarize a raw trace log (text or binary) before using it.
//
// Usage: leaps_stat <trace.log> [more.log ...]
#include <cstdio>
#include <fstream>

#include "trace/binary_log.h"
#include "trace/log_stats.h"
#include "trace/parser.h"
#include "trace/partition.h"

int main(int argc, char** argv) {
  using namespace leaps;
  if (argc < 2) {
    std::fprintf(stderr, "usage: leaps_stat <trace.log> [more.log ...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "leaps_stat: cannot open %s\n", argv[i]);
      rc = 1;
      continue;
    }
    try {
      const trace::RawLog raw = trace::read_raw_log_any(is);
      const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
      const trace::PartitionedLog log =
          trace::StackPartitioner(t.log.process_name).partition(t.log);
      std::printf("== %s ==\n%s\n", argv[i],
                  trace::compute_stats(log).to_string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "leaps_stat: %s: %s\n", argv[i], e.what());
      rc = 1;
    }
  }
  return rc;
}
