// leaps_attrib — campaign signatures and offline attribution.
//
// Subcommands:
//   derive <campaign|all> <sigdir> [--decoys]
//     Write the ground-truth .sig file(s) for a campaign_* dataset (or
//     the whole catalog) into <sigdir>; --decoys also writes the
//     permuted negatives (__reversed / __rotated).
//   match <audit.jsonl> <sigdir> [--top K] [--min-score X]
//     Offline attribution: read the flagged-window evidence out of a
//     leaps-serve audit JSONL ('-' = stdin) and rank every signature in
//     <sigdir> against it. Prints one "AttributionVerdict" line per
//     ranked signature; exit 0 with at least one verdict, 3 when no
//     signature clears --min-score, 2 on bad input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "attrib/matcher.h"
#include "attrib/signature.h"
#include "cli.h"
#include "sim/campaign.h"

namespace {

constexpr const char* kUsage =
    "usage: leaps-attrib derive <campaign|all> <sigdir> [--decoys]\n"
    "       leaps-attrib match <audit.jsonl> <sigdir> [--top K] "
    "[--min-score X]\n"
    "  derive  write campaign_* ground-truth signatures (.sig files)\n"
    "  match   rank signatures against a leaps-serve audit JSONL\n";

int write_signature_file(const leaps::attrib::CampaignSignature& sig,
                         const std::string& dir) {
  const std::string path = dir + "/" + sig.name + ".sig";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "leaps-attrib: cannot write %s\n", path.c_str());
    return 1;
  }
  leaps::attrib::write_signature(sig, os);
  std::printf("wrote %s (%zu nodes, %zu edges)\n", path.c_str(),
              sig.nodes.size(), sig.edges.size());
  return 0;
}

int run_derive(const std::string& which, const std::string& dir, bool decoys) {
  using namespace leaps;
  std::vector<sim::CampaignSpec> specs;
  if (which == "all") {
    specs = sim::campaign_catalog();
  } else {
    try {
      specs.push_back(sim::find_campaign(which));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "leaps-attrib: %s\n", e.what());
      return 2;
    }
  }
  for (const sim::CampaignSpec& spec : specs) {
    const attrib::CampaignSignature sig = attrib::signature_from_campaign(spec);
    if (const int rc = write_signature_file(sig, dir); rc != 0) return rc;
    if (!decoys) continue;
    for (const attrib::CampaignSignature& decoy :
         attrib::decoy_signatures(sig)) {
      if (const int rc = write_signature_file(decoy, dir); rc != 0) return rc;
    }
  }
  return 0;
}

int run_match(const std::string& jsonl, const std::string& sigdir,
              std::size_t top_k, double min_score) {
  using namespace leaps;
  attrib::SignatureLibrary library;
  if (const util::Status s = library.load_dir(sigdir); !s.ok()) {
    std::fprintf(stderr, "leaps-attrib: %s\n", s.message().c_str());
    return 2;
  }

  util::StatusOr<std::vector<attrib::WindowEvidence>> evidence =
      [&jsonl]() -> util::StatusOr<std::vector<attrib::WindowEvidence>> {
    if (jsonl == "-") return attrib::evidence_from_audit_jsonl(std::cin);
    std::ifstream in(jsonl);
    if (!in) return util::not_found("cannot open " + jsonl);
    return attrib::evidence_from_audit_jsonl(in);
  }();
  if (!evidence.ok()) {
    std::fprintf(stderr, "leaps-attrib: %s\n",
                 evidence.status().message().c_str());
    return 2;
  }

  std::printf("signatures %zu, flagged windows %zu\n", library.size(),
              evidence->size());
  const auto ranked = attrib::attribute(library, *evidence);
  std::size_t shown = 0;
  for (const attrib::AttributionVerdict& v : ranked) {
    if (v.score < min_score) break;  // ranked descending
    if (shown >= top_k) break;
    ++shown;
    std::printf(
        "AttributionVerdict rank=%zu signature=%s score=%.6f nodes=%zu/%zu "
        "edges=%zu/%zu windows=[%zu,%zu]\n",
        shown, v.signature.c_str(), v.score, v.nodes_matched, v.nodes_total,
        v.edges_satisfied, v.edges_total, v.first_window, v.last_window);
  }
  return shown > 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv, kUsage);
  bool decoys = false;
  std::size_t top_k = 10;
  double min_score = 0.0;
  args.flag("--decoys", &decoys);
  args.option("--top", &top_k);
  args.option("--min-score", &min_score);
  const std::vector<std::string> pos = args.parse(3, 3);

  if (pos[0] == "derive") return run_derive(pos[1], pos[2], decoys);
  if (pos[0] == "match") return run_match(pos[1], pos[2], top_k, min_score);
  args.usage_error("unknown command '%s'", pos[0].c_str());
}
