// leaps_chaos — chaos harness for the detection service.
//
// Replays simulator logs through the serving stack while arming fault
// points (util/fault.h) and feeding the binary-log reader corrupted
// bytes, then asserts the service's robustness contract:
//
//   * no crash, no abort, no deadlock (a per-phase watchdog converts a
//     hang into a diagnostic and exit 1),
//   * exact accounting — after drain(),
//       events_ingested == events_processed + events_dropped
//                          + events_quarantined,
//   * blast-radius isolation — injected classification faults quarantine
//     only the targeted "victim-*" sessions; every "steady-*" session's
//     verdicts match a fault-free sequential replay bit-for-bit.
//
// Fully deterministic in --seed (fault draws, corpus mutations, and the
// simulated logs all derive from it). Exit 0 = contract held, 1 = any
// violation, 2 = usage.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cli.h"
#include "core/persist.h"
#include "core/pipeline.h"
#include "durable/store.h"
#include "durable/wal.h"
#include "ml/svm.h"
#include "online/manager.h"
#include "online/shadow.h"
#include "online/verdict_diff.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "trace/auditd_log.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace leaps;

constexpr const char* kUsage =
    "usage: leaps-chaos [--seed N] [--events N] [--sessions N] [--rate F]\n"
    "                   [--corpus N] [--smoke]\n"
    "  chaos-tests the detection service: replays logs with fault points\n"
    "  armed and bit-flipped binary logs, asserting no crash/deadlock,\n"
    "  exact event accounting, and per-session fault isolation.\n"
    "  --seed N      deterministic seed for faults + corpus (default 2015)\n"
    "  --events N    total events in the replay phases (default 10000)\n"
    "  --sessions N  concurrent sessions, half victims (default 8)\n"
    "  --rate F      per-event fault probability on victims (default 0.05)\n"
    "  --corpus N    corrupted binary-log variants per kind (default 200)\n"
    "  --smoke       small fast run for CI\n"
    "  --soak        fleet-scale session-fabric soak: hold --sessions live\n"
    "                sessions at once (CI drills 100000; pass 1000000 for\n"
    "                the documented 1M-session scale), burst-classify a\n"
    "                sample through micro-batched hand-off, then close the\n"
    "                fleet — asserting exact accounting and slab-slot\n"
    "                reconciliation. Runs instead of the replay phases\n"
    "  --rollover    also exercise the online retrain -> shadow -> promote\n"
    "                machinery plus a forced-rollback drill (not part of\n"
    "                plain --smoke; CI runs it as a non-gating canary)\n"
    "  --crash       kill-restart drills: a forked child is _Exit()ed at\n"
    "                each durable fault point (mid-snapshot-rename, mid-\n"
    "                journal-append, between checkpoint and truncate); the\n"
    "                recovered state must serve verdicts identical to the\n"
    "                child's own uncrashed baseline. Also runs the drift\n"
    "                drill: a child killed between the journaled drift\n"
    "                samples and the trigger record must, after recovery,\n"
    "                re-fire the KS trigger at the same LSN with an\n"
    "                identical monitor state\n"
    "  --trace-out FILE, --profile, --metrics-out FILE  observability\n"
    "exit: 0 contract held, 1 violation, 2 usage\n";

int g_failures = 0;

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "leaps-chaos: FAIL: %s\n", what);
    ++g_failures;
  }
  return ok;
}

/// Converts a hung phase into a diagnostic + exit 1 instead of a CI
/// timeout with no context.
class Watchdog {
 public:
  Watchdog(const char* phase, std::chrono::seconds limit) {
    thread_ = std::thread([this, phase, limit] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, limit, [this] { return done_; })) {
        std::fprintf(stderr,
                     "leaps-chaos: FAIL: deadlock suspected — phase '%s' "
                     "exceeded %llds\n",
                     phase, static_cast<long long>(limit.count()));
        std::_Exit(1);
      }
    });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

trace::PartitionedLog partition_raw(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

struct Trained {
  trace::RawLog raw_benign;  // serialization fodder for the ingest phase
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  trace::PartitionedLog malicious;  // the drift drill's shifted replay
  std::shared_ptr<const core::Detector> detector;
};

/// Small genuinely-trained detector (mirrors the test fixture; tools
/// cannot include tests/).
Trained train_detector(std::size_t sim_events, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.benign_events = sim_events;
  cfg.mixed_events = sim_events * 3 / 4;
  cfg.malicious_events = sim_events / 2;
  cfg.seed = seed;
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), cfg);

  Trained out;
  out.raw_benign = logs.benign;
  out.benign = partition_raw(logs.benign);
  out.mixed = partition_raw(logs.mixed);
  out.malicious = partition_raw(logs.malicious);

  const core::TrainingData td =
      core::LeapsPipeline().prepare(out.benign, out.mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::TrainStats stats;
  const ml::SvmModel model = ml::SvmTrainer({}).train(train, &stats);
  auto detector =
      std::make_shared<core::Detector>(td.preprocessor, scaler, model);
  // Continual state makes the detector warm-retrainable (the --rollover
  // phase needs it; harmless otherwise).
  core::ContinualState continual;
  continual.benign_cfg = td.benign_cfg.graph;
  continual.train = std::move(train);
  continual.alpha = std::move(stats.alpha);
  detector->set_continual(std::move(continual));
  out.detector = std::move(detector);
  return out;
}

void check_identity(const serve::MetricsSnapshot& m, const char* phase) {
  const std::uint64_t accounted =
      m.events_processed + m.events_dropped + m.events_quarantined;
  if (m.events_ingested != accounted) {
    std::fprintf(stderr,
                 "leaps-chaos: FAIL: %s accounting: ingested=%llu != "
                 "processed=%llu + dropped=%llu + quarantined=%llu\n",
                 phase, static_cast<unsigned long long>(m.events_ingested),
                 static_cast<unsigned long long>(m.events_processed),
                 static_cast<unsigned long long>(m.events_dropped),
                 static_cast<unsigned long long>(m.events_quarantined));
    ++g_failures;
  }
}

/// Phase: every truncation of a valid binary log must be rejected as
/// corrupt, and every bit-flipped variant must come back as a Status —
/// ok or error — never an escaped exception, crash, or hang.
void ingest_chaos(const trace::RawLog& log, std::size_t corpus,
                  util::Rng& rng) {
  const Watchdog watchdog("ingest", std::chrono::seconds(120));
  std::ostringstream encoded;
  trace::write_raw_log_binary(log, encoded);
  const std::string bytes = encoded.str();
  {
    std::istringstream is(bytes);
    check(trace::read_raw_log_binary(is).ok(),
          "ingest: pristine binary log must read back");
  }

  for (std::size_t i = 0; i < corpus; ++i) {
    const std::size_t cut = rng.next_below(bytes.size());
    std::istringstream is(bytes.substr(0, cut));
    const util::StatusOr<trace::RawLog> got = trace::read_raw_log_binary(is);
    check(!got.ok(), "ingest: a truncated log must not parse");
  }

  std::size_t flips_ok = 0;
  std::size_t flips_rejected = 0;
  for (std::size_t i = 0; i < corpus; ++i) {
    std::string mutated = bytes;
    // 1-3 independent bit flips per variant.
    const std::size_t flips = 1 + rng.next_below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^
          (1u << rng.next_below(8)));
    }
    std::istringstream is(mutated);
    try {
      // read_raw_log_any also exercises format sniffing on hostile bytes.
      const util::StatusOr<trace::RawLog> got = trace::read_raw_log_any(is);
      got.ok() ? ++flips_ok : ++flips_rejected;
    } catch (...) {
      check(false, "ingest: reader let an exception escape on corrupt bytes");
    }
  }
  std::printf("ingest chaos: %zu truncations rejected, bit-flips "
              "%zu ok / %zu rejected, 0 crashes\n",
              corpus, flips_ok, flips_rejected);

  // Same drill against the auditd/provenance dialect. Auditd is a line
  // format, so a truncation at a record boundary can still be
  // structurally complete — it must then parse to strictly fewer events,
  // never crash; any other outcome is kCorruptInput.
  std::ostringstream audit_encoded;
  trace::write_raw_log_auditd(log, audit_encoded);
  const std::string audit_bytes = audit_encoded.str();
  {
    std::istringstream is(audit_bytes);
    const util::StatusOr<trace::RawLog> got = trace::read_raw_log_any(is);
    check(got.ok() && *got == log,
          "ingest: pristine auditd log must round-trip through sniffing");
  }
  std::size_t audit_cut_rejected = 0;
  std::size_t audit_cut_shorter = 0;
  for (std::size_t i = 0; i < corpus; ++i) {
    const std::size_t cut = rng.next_below(audit_bytes.size());
    std::istringstream is(audit_bytes.substr(0, cut));
    try {
      const util::StatusOr<trace::RawLog> got = trace::read_raw_log_any(is);
      if (!got.ok()) {
        check(got.status().code() == util::StatusCode::kCorruptInput,
              "ingest: a truncated auditd log must reject as CORRUPT_INPUT");
        ++audit_cut_rejected;
      } else {
        // A cut that strips only the trailing newline (or the tail of
        // the final token) can keep every event; it can never invent
        // new ones.
        check(got->events.size() <= log.events.size(),
              "ingest: a truncated auditd log cannot gain events");
        ++audit_cut_shorter;
      }
    } catch (...) {
      check(false, "ingest: auditd reader let an exception escape on a cut");
    }
  }
  std::size_t audit_flips_ok = 0;
  std::size_t audit_flips_rejected = 0;
  for (std::size_t i = 0; i < corpus; ++i) {
    std::string mutated = audit_bytes;
    const std::size_t flips = 1 + rng.next_below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^
          (1u << rng.next_below(8)));
    }
    std::istringstream is(mutated);
    try {
      const util::StatusOr<trace::RawLog> got = trace::read_raw_log_any(is);
      got.ok() ? ++audit_flips_ok : ++audit_flips_rejected;
    } catch (...) {
      check(false,
            "ingest: auditd reader let an exception escape on corrupt bytes");
    }
  }
  std::printf("ingest chaos (auditd): cuts %zu rejected / %zu shortened, "
              "bit-flips %zu ok / %zu rejected, 0 crashes\n",
              audit_cut_rejected, audit_cut_shorter, audit_flips_ok,
              audit_flips_rejected);
}

/// Phase: fault-free sequential replay — the per-session ground truth.
std::vector<int> baseline_verdicts(const core::Detector& detector,
                                   const trace::PartitionedLog& log,
                                   std::size_t per_session) {
  core::Detector::Stream stream = detector.stream();
  std::vector<int> labels;
  for (std::size_t i = 0; i < per_session; ++i) {
    const std::optional<int> label =
        stream.push(log.events[i % log.events.size()]);
    if (label.has_value()) labels.push_back(*label);
  }
  return labels;
}

/// Phase: concurrent replay with classification faults injected into the
/// victim sessions only.
void fault_replay(const Trained& trained, std::size_t sessions,
                  std::size_t per_session, double rate,
                  const std::vector<int>& baseline) {
  const Watchdog watchdog("fault-replay", std::chrono::seconds(300));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.workers = 4;
  options.batch_size = 64;
  options.circuit_breaker = 1;  // one injected throw quarantines
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  std::mutex verdicts_mu;
  // Keyed by SessionKey directly: rebuilding "host:pid" strings per
  // verdict was measurable noise on the hot sink path.
  std::map<serve::SessionKey, std::vector<int>> verdicts;
  server.set_verdict_sink([&](const serve::VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(verdicts_mu);
    verdicts[v.key].push_back(v.label);
  });

  std::vector<serve::SessionKey> keys;
  std::vector<std::shared_ptr<serve::Session>> opened;
  for (std::size_t s = 0; s < sessions; ++s) {
    const bool victim = s % 2 == 0;
    keys.push_back(serve::SessionKey{
        (victim ? "victim-" : "steady-") + std::to_string(s),
        static_cast<std::uint32_t>(1000 + s)});
    opened.push_back(server.open_session(keys.back(), "default"));
    check(opened.back() != nullptr, "fault-replay: open_session failed");
  }

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kThrow;
    spec.probability = rate;
    spec.filter = "victim";  // matches victim-* session keys only
    injector.arm("serve.worker.classify", spec);
  }
  server.start();

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& session = opened[s];
      const auto& events = trained.mixed.events;
      for (std::size_t i = 0; i < per_session; ++i) {
        server.submit(session, events[i % events.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();

  check_identity(server.metrics().snapshot(), "fault-replay");

  std::size_t victims_quarantined = 0;
  {
    const std::lock_guard<std::mutex> lock(verdicts_mu);
    for (std::size_t s = 0; s < sessions; ++s) {
      const bool victim = s % 2 == 0;
      const bool quarantined = opened[s]->quarantined();
      if (victim) {
        victims_quarantined += quarantined ? 1 : 0;
      } else {
        check(!quarantined,
              "fault-replay: a steady session was quarantined");
        const online::SequenceDiff diff =
            online::diff_sequences(verdicts[keys[s]], baseline);
        if (!check(diff.identical(),
                   "fault-replay: steady session diverged from the "
                   "fault-free run")) {
          std::fprintf(stderr,
                       "  %s: %zu/%zu windows disagree, length delta %zu\n",
                       keys[s].to_string().c_str(), diff.disagreements,
                       diff.compared, diff.length_delta);
        }
      }
    }
  }
  check(victims_quarantined >= 1,
        "fault-replay: no victim session was quarantined");

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  server.stop();
  injector.disarm_all();
  std::printf(
      "fault replay: %zu sessions x %zu events, %zu/%zu victims "
      "quarantined, %llu failed, %llu quarantined events; steady "
      "sessions matched baseline\n",
      static_cast<std::size_t>(opened.size()), per_session,
      victims_quarantined, (opened.size() + 1) / 2,
      static_cast<unsigned long long>(m.events_failed),
      static_cast<unsigned long long>(m.events_quarantined));
}

/// Phase: deterministic registry-retry check — a transient registry
/// outage exhausts the configured retries, then recovery succeeds.
void registry_chaos(const Trained& trained) {
  const Watchdog watchdog("registry", std::chrono::seconds(60));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.registry_retries = 3;
  options.registry_backoff = std::chrono::milliseconds(1);
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kError;
    spec.error_code = util::StatusCode::kUnavailable;
    injector.arm("serve.registry.find", spec);
  }
  const serve::SessionKey key{"retry-host", 1};
  check(server.open_session(key, "default") == nullptr,
        "registry: lookup must fail while the outage lasts");
  check(server.metrics().snapshot().registry_retries == 3,
        "registry: expected exactly 3 backed-off retries");
  injector.disarm_all();
  check(server.open_session(key, "default") != nullptr,
        "registry: lookup must succeed after the outage clears");
  std::printf("registry chaos: outage exhausted 3 retries, recovery ok\n");
}

/// Phase: latency injection against tiny queues with shedding enabled —
/// the server must keep draining and keep its books balanced even while
/// dropping load.
void latency_chaos(const Trained& trained, std::size_t sessions,
                   std::size_t per_session) {
  const Watchdog watchdog("latency", std::chrono::seconds(300));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.workers = 2;
  options.batch_size = 32;
  options.queue_capacity = 64;
  options.shed_queue_wait_us = 200;
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kDelay;
    spec.probability = 0.25;
    spec.delay = std::chrono::microseconds(300);
    injector.arm("serve.worker.classify", spec);
  }
  server.start();

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto session = server.open_session(
          serve::SessionKey{"slow-" + std::to_string(s),
                            static_cast<std::uint32_t>(2000 + s)},
          "default");
      const auto& events = trained.mixed.events;
      for (std::size_t i = 0; i < per_session; ++i) {
        server.submit(session, events[i % events.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  check_identity(m, "latency");
  server.stop();
  injector.disarm_all();
  std::printf("latency chaos: drained %llu events under injected delay "
              "(%llu shed, %llu shed activations)\n",
              static_cast<unsigned long long>(m.events_ingested),
              static_cast<unsigned long long>(m.events_shed),
              static_cast<unsigned long long>(m.shed_activations));
}

/// Phase (--rollover): a live server runs a full online-learning cycle —
/// benign traffic accumulates, a warm retrain produces a candidate, the
/// candidate shadows and promotes through the RCU swap — then a
/// deliberately broken candidate is shadowed and must roll back. The
/// contract: no crash, exact accounting, zero dropped events, and both
/// the promotion and the rollback actually happen.
void rollover_chaos(const Trained& trained, std::size_t sessions,
                    std::size_t per_session) {
  const Watchdog watchdog("rollover", std::chrono::seconds(300));

  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  online::OnlineOptions online_options;
  online_options.retrain.min_new_events = 1;
  online_options.retrain.max_new_samples = 64;
  online_options.gates.min_windows = 4;
  // This phase drills the machinery, not model quality: promote whenever
  // the comparison completes (disagreement/latency gates wide open).
  online_options.gates.max_disagreement = 1.0;
  online_options.gates.max_latency_ratio = 1e9;
  online::OnlineManager manager(&server, online_options);
  manager.install();
  server.start();

  std::vector<std::shared_ptr<serve::Session>> opened;
  for (std::size_t s = 0; s < sessions; ++s) {
    opened.push_back(server.open_session(
        serve::SessionKey{"roll-" + std::to_string(s),
                          static_cast<std::uint32_t>(3000 + s)},
        "default"));
    check(opened.back() != nullptr, "rollover: open_session failed");
  }
  const auto replay_round = [&] {
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < sessions; ++s) {
      producers.emplace_back([&, s] {
        const auto& events = trained.benign.events;
        for (std::size_t i = 0; i < per_session; ++i) {
          server.submit(opened[s], events[i % events.size()]);
        }
      });
    }
    for (std::thread& p : producers) p.join();
    server.drain();
  };

  // Round 1 accumulates + retrains (the first poll stages the shadow),
  // round 2 feeds the shadow, the second poll promotes. No third poll: it
  // would start the next retrain cycle and stage a fresh shadow, blocking
  // the drill below.
  replay_round();
  manager.poll_once();
  replay_round();
  manager.poll_once();

  online::OnlineReport report = manager.report();
  check(report.retrain_cycles >= 1, "rollover: no retrain cycle ran");
  check(report.promotions >= 1, "rollover: candidate was not promoted");

  // Rollback drill: an all-malicious candidate must fail the (now
  // meaningful) disagreement gate on benign traffic and end quarantined.
  auto broken = std::make_shared<core::Detector>(*trained.detector);
  broken->set_decision_threshold(1e18);
  online::ShadowEvaluator evaluator({/*max_disagreement=*/0.02,
                                     /*max_latency_ratio=*/1e9,
                                     /*min_windows=*/4});
  check(server.begin_shadow(
            "default", broken,
            [&evaluator](const serve::SessionKey& key, int active,
                         int shadow, std::uint64_t a_ns,
                         std::uint64_t s_ns) {
              evaluator.record(key, active, shadow, a_ns, s_ns);
            }),
        "rollover: drill begin_shadow refused");
  replay_round();
  check(evaluator.decision() == online::RolloverDecision::kRollback,
        "rollover: broken candidate was not voted down");
  check(server.end_shadow("default", false),
        "rollover: drill end_shadow refused");
  check(server.registry().quarantined_count("default") == 1,
        "rollover: broken candidate not quarantined");

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  check_identity(m, "rollover");
  check(m.events_dropped == 0, "rollover: promotion dropped events");
  server.stop();
  std::printf(
      "rollover chaos: %llu retrains (warm saved %llu iters), "
      "%llu promotion(s), 1 forced rollback, %llu events with 0 drops\n",
      static_cast<unsigned long long>(report.retrain_cycles),
      static_cast<unsigned long long>(report.warm_iterations_saved),
      static_cast<unsigned long long>(report.promotions),
      static_cast<unsigned long long>(m.events_processed));
}

/// Phase: persist-targeted corruption corpus. Every damaged artifact must
/// come back as a *typed* core::PersistError (load paths) or a torn-tail
/// scan (WAL recovery path) — never a crash, hang, or foreign exception.
void persist_corrupt_corpus(const Trained& trained) {
  const Watchdog watchdog("persist-corpus", std::chrono::seconds(120));
  std::ostringstream os;
  core::save_detector(*trained.detector, os);  // v3, CONTINUAL included
  const std::string bytes = os.str();

  const auto expect_typed = [](const std::string& mutated, const char* what) {
    std::istringstream is(mutated);
    try {
      core::load_detector(is);
      check(false, what);
    } catch (const core::PersistError&) {
      // typed rejection — contract held
    } catch (...) {
      check(false, "persist-corpus: non-PersistError escaped the loader");
    }
  };

  // Truncated CONTINUAL block: cut mid-payload.
  const std::size_t continual = bytes.find("BLOCK CONTINUAL");
  if (check(continual != std::string::npos,
            "persist-corpus: detector has no CONTINUAL block")) {
    const std::size_t payload = bytes.find('\n', continual) + 1;
    expect_typed(bytes.substr(0, payload + (bytes.size() - payload) / 2),
                 "persist-corpus: truncated CONTINUAL block must not load");
  }

  // One checksum flip inside every v3 block's payload.
  std::size_t blocks = 0;
  for (std::size_t at = bytes.find("BLOCK "); at != std::string::npos;
       at = bytes.find("BLOCK ", at + 1)) {
    const std::size_t payload = bytes.find('\n', at) + 1;
    std::string mutated = bytes;
    mutated[payload] ^= 0x01;
    expect_typed(mutated,
                 "persist-corpus: checksum flip must not load");
    ++blocks;
  }
  check(blocks >= 6, "persist-corpus: expected every v3 block covered");

  // WAL record with a valid frame header but a short body (the torn shape
  // a mid-append kill leaves behind).
  char tmpl[] = "/tmp/leaps-chaos-wal-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (check(dir != nullptr, "persist-corpus: mkdtemp failed")) {
    const std::string wal = std::string(dir) + "/journal.wal";
    {
      std::ofstream out(wal, std::ios::binary);
      out << durable::kWalMagic;
      const std::uint32_t body_len = 100, crc = 0xDEADBEEF;
      out.write(reinterpret_cast<const char*>(&body_len), 4);
      out.write(reinterpret_cast<const char*>(&crc), 4);
      out << "short";  // 5 of the promised 100 body bytes
    }
    try {
      durable::verify_wal_strict(wal);
      check(false, "persist-corpus: short WAL body passed strict verify");
    } catch (const core::PersistError&) {
    } catch (...) {
      check(false, "persist-corpus: non-PersistError from strict verify");
    }
    const auto scan = durable::scan_wal(wal);
    check(scan.ok() && scan->torn && scan->records.empty(),
          "persist-corpus: recovery scan must keep the intact prefix only");
    ::unlink(wal.c_str());
    ::rmdir(dir);
  }
  std::printf("persist corpus: %zu checksum flips + truncated CONTINUAL + "
              "short WAL body all typed, 0 crashes\n", blocks);
}

/// Phase (--soak): fleet-scale session-fabric soak. Holds `fleet` live
/// sessions at once (CI drills 100k; the documented scale is 1M — pass
/// --sessions 1000000), drives a classification burst through a rotating
/// sample with micro-batched hand-off engaged, then closes the whole
/// fleet. The contract: every open succeeds and stays held (peak active
/// == fleet), exact accounting after drain, the slab pool accounts for
/// every session slot, and teardown returns every slot to the freelist.
void soak_fabric(const Trained& trained, std::size_t fleet, bool smoke) {
  const Watchdog watchdog("soak", std::chrono::seconds(smoke ? 600 : 3000));

  serve::ServerOptions options;
  options.workers = smoke ? 2 : 4;
  options.session_shards = 256;   // the sharded table is what soaks
  options.coalesce = 8;           // exercise the batched hand-off path
  options.queue_capacity = 8192;
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);
  server.start();

  for (std::size_t s = 0; s < fleet; ++s) {
    const serve::SessionKey key{"soak-" + std::to_string(s & 1023),
                                static_cast<std::uint32_t>(s)};
    if (server.open_session(key, "default") == nullptr) {
      check(false, "soak: open_session failed mid-fleet");
      return;
    }
  }
  const std::size_t peak = server.sessions().active();
  check(peak == fleet, "soak: fleet not fully held");
  {
    const serve::MetricsSnapshot m = server.metrics().snapshot();
    check(m.slab_sessions_in_use + m.slab_overflow ==
              static_cast<std::int64_t>(fleet),
          "soak: slab pool does not account for every session slot");
  }

  // Classification burst through a sample of the fleet (windows must
  // still assemble correctly while 100k+ sessions are resident).
  const std::size_t window = trained.detector->preprocessor().window();
  const std::size_t sample = std::min<std::size_t>(fleet, 512);
  const std::size_t burst = window * 2;
  const auto& events = trained.benign.events;
  for (std::size_t s = 0; s < sample; ++s) {
    // Spread the sample across the fleet, not just the first shards.
    const std::size_t idx = s * (fleet / sample);
    const serve::SessionKey key{"soak-" + std::to_string(idx & 1023),
                                static_cast<std::uint32_t>(idx)};
    for (std::size_t i = 0; i < burst; ++i) {
      server.submit(key, events[i % events.size()]);
    }
  }
  server.drain();
  const serve::MetricsSnapshot mid = server.metrics().snapshot();
  check_identity(mid, "soak");
  check(mid.events_ingested == sample * burst,
        "soak: burst events not all accepted");
  check(mid.windows_scored >= sample,
        "soak: sampled sessions scored no windows");

  // Teardown: close the entire fleet; every slab slot must come home.
  std::size_t closed = 0;
  for (std::size_t s = 0; s < fleet; ++s) {
    const serve::SessionKey key{"soak-" + std::to_string(s & 1023),
                                static_cast<std::uint32_t>(s)};
    closed += server.close_session(key).has_value() ? 1 : 0;
  }
  check(closed == fleet, "soak: close did not find every session");
  check(server.sessions().active() == 0, "soak: sessions left behind");
  server.drain();
  server.stop();
  {
    const serve::MetricsSnapshot m = server.metrics().snapshot();
    check(m.slab_sessions_in_use == 0,
          "soak: session slots leaked after teardown");
    check(m.slab_sessions_free > 0,
          "soak: freelist empty after returning the fleet");
  }
  std::printf("soak: held %zu sessions (peak %zu), burst %zu x %zu events "
              "through micro-batches, accounting exact, slab slots "
              "reconciled (1M is the documented scale: --sessions "
              "1000000)\n",
              fleet, peak, sample, burst);
}

// --- kill-restart drills (--crash) ----------------------------------------

/// Child process for one crash drill (exec'd, never forked bare: the
/// parent's lazily-started thread pool would not survive a fork). Runs a
/// deterministic single-worker workload to a complete learn -> promote ->
/// checkpoint cycle, writes its own uncrashed-baseline verdicts into the
/// durable dir, then arms the requested fault (action `exit` == _Exit,
/// the closest portable stand-in for kill -9) and keeps going until it
/// dies at the fault point.
int crash_child(const char* dir_c, const char* spec, std::size_t sim_events) {
  const std::string dir = dir_c;
  const Trained trained = train_detector(sim_events, 7);

  durable::DurableOptions dopts;
  dopts.dir = dir;
  dopts.checkpoint_every_appends = 1u << 30;  // explicit checkpoints only
  durable::DurableStore store(dopts);
  if (!store.open().ok()) return 2;

  serve::ServerOptions soptions;
  soptions.workers = 1;  // deterministic admission order
  serve::DetectionServer server(soptions);
  server.registry().add("default", trained.detector);

  online::OnlineOptions oopts;
  oopts.accumulator.admit_floor = 0.0;
  oopts.retrain.min_new_events = 1;
  oopts.retrain.max_new_samples = 32;
  oopts.gates = {.max_disagreement = 1.0,
                 .max_latency_ratio = 1e9,
                 .min_windows = 2};
  oopts.durable = &store;
  online::OnlineManager manager(&server, oopts);
  manager.install();
  server.start();
  const auto session = server.open_session({"crash", 1}, "default");
  if (session == nullptr) return 2;
  const auto replay = [&] {
    for (const trace::PartitionedEvent& e : trained.benign.events) {
      server.submit(session, e);
    }
    server.drain();
  };

  // A complete uncrashed cycle: accumulate -> retrain -> shadow -> promote
  // (the promotion checkpoints, truncating the journal).
  replay();
  manager.poll_once();
  replay();
  manager.poll_once();
  if (manager.report().promotions != 1) return 4;
  const auto incumbent = server.registry().find("default");
  {
    // The uncrashed baseline the parent compares recovery against.
    std::ofstream out(dir + "/expected_labels.txt");
    for (const int label : incumbent->scan(trained.mixed).window_labels) {
      out << label << "\n";
    }
  }
  replay();  // live journal records for the crash to land on top of

  if (!util::FaultInjector::instance().arm_from_spec(spec)) return 2;
  replay();        // dies here for durable.wal.append.mid
  manager.stop();  // final checkpoint dies at the snapshot/truncate points
  return 3;        // fault never fired — the parent fails the drill
}

struct CrashScenario {
  const char* name;
  const char* spec;
  int exit_status;      // what the armed exit fault reports via waitpid
  bool expect_torn;     // journal tail truncated on recovery
  bool expect_skipped;  // stale records skipped by the LSN guard
};

/// Phase (--crash): for each durable fault point, exec a child that dies
/// mid-operation, then recover its directory and assert the contract:
/// the incumbent survives bit-exactly (verdicts identical to the child's
/// own pre-crash baseline), the accounting identity holds, torn tails are
/// truncated, and already-folded journal records are never double-applied.
void crash_drills(const Trained& trained, std::size_t sim_events) {
  const Watchdog watchdog("crash", std::chrono::seconds(600));
  char base_template[] = "/tmp/leaps-chaos-crash-XXXXXX";
  char* base = ::mkdtemp(base_template);
  if (!check(base != nullptr, "crash: mkdtemp failed")) return;

  char exe_buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (!check(n > 0, "crash: cannot resolve /proc/self/exe")) return;
  exe_buf[n] = '\0';
  const std::string exe = exe_buf;

  const CrashScenario scenarios[] = {
      // The explicit :91 exercises the spec grammar's exit-code field; the
      // others take the 137 default.
      {"wal-append-mid", "durable.wal.append.mid:exit:1:91", 91, true,
       false},
      {"snapshot-pre-rename", "durable.snapshot.pre_rename:exit:1", 137,
       false, false},
      {"checkpoint-pre-truncate", "durable.checkpoint.pre_truncate:exit:1",
       137, false, true},
  };
  for (const CrashScenario& sc : scenarios) {
    const std::string dir = std::string(base) + "/" + sc.name;
    ::mkdir(dir.c_str(), 0755);
    const pid_t pid = ::fork();
    if (pid == 0) {
      const std::string events = std::to_string(sim_events);
      ::execl(exe.c_str(), exe.c_str(), "--crash-child", dir.c_str(), sc.spec,
              events.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    // Only the armed kExit status is acceptable — anything else means the
    // child never reached the fault point (or failed before it).
    if (!check(WIFEXITED(status) && WEXITSTATUS(status) == sc.exit_status,
               "crash: child did not die at the fault point")) {
      std::fprintf(stderr, "  %s: wait status %d\n", sc.name, status);
      continue;
    }

    durable::DurableOptions dopts;
    dopts.dir = dir;
    durable::DurableStore store(dopts);
    const auto recovered = store.recover();
    if (!check(recovered.ok(), "crash: recovery failed")) {
      std::fprintf(stderr, "  %s: %s\n", sc.name,
                   recovered.status().to_string().c_str());
      continue;
    }
    check(recovered->snapshot_found, "crash: snapshot missing after drill");
    check(recovered->torn_tail == sc.expect_torn,
          "crash: torn-tail state not as the fault point dictates");
    if (sc.expect_skipped) {
      check(recovered->skipped > 0 && recovered->replayed == 0,
            "crash: LSN guard failed to skip already-folded records");
    }
    const durable::AccountingBaseline& a = recovered->accounting;
    check(a.ingested == a.processed + a.dropped + a.quarantined,
          "crash: recovered accounting identity broken");
    if (!check(recovered->detector != nullptr,
               "crash: incumbent lost across the restart")) {
      continue;
    }

    std::vector<int> expected;
    {
      std::ifstream in(dir + "/expected_labels.txt");
      int v = 0;
      while (in >> v) expected.push_back(v);
    }
    check(!expected.empty(), "crash: child wrote no baseline verdicts");
    check(recovered->detector->scan(trained.mixed).window_labels == expected,
          "crash: recovered verdicts differ from the uncrashed baseline");

    if (std::string_view(sc.name) == "snapshot-pre-rename") {
      // Warm-restart the full serving path from the recovered state: live
      // verdicts must match a sequential replay of the recovered model,
      // and the accounting identity must hold on top of the restored
      // baseline.
      if (!check(store.open().ok(), "crash: warm-restart reopen failed")) {
        continue;
      }
      serve::ServerOptions so;
      so.workers = 2;
      serve::DetectionServer server(so);
      server.registry().add("default", recovered->detector);
      online::OnlineOptions oo;
      oo.durable = &store;
      online::OnlineManager manager(&server, oo);
      manager.install();
      manager.restore(*recovered);
      std::mutex mu;
      std::vector<int> live;
      server.set_verdict_sink([&](const serve::VerdictRecord& v) {
        const std::lock_guard<std::mutex> lock(mu);
        live.push_back(v.label);
      });
      server.start();
      const auto probe_session = server.open_session({"restart", 1},
                                                     "default");
      if (!check(probe_session != nullptr,
                 "crash: warm-restart open_session failed")) {
        continue;
      }
      const std::size_t probe =
          std::min<std::size_t>(trained.mixed.events.size(), 2048);
      for (std::size_t i = 0; i < probe; ++i) {
        server.submit(probe_session, trained.mixed.events[i]);
      }
      server.drain();
      const std::vector<int> sequential =
          baseline_verdicts(*recovered->detector, trained.mixed, probe);
      {
        const std::lock_guard<std::mutex> lock(mu);
        check(live == sequential,
              "crash: warm-restarted serving verdicts diverged");
      }
      check_identity(server.metrics().snapshot(), "crash-warm-restart");
      server.stop();
      manager.stop();
    }

    std::printf("crash drill %-24s recovered: %zu pending, %llu replayed, "
                "%llu skipped, torn=%d, verdicts identical\n",
                sc.name, recovered->pending_windows.size(),
                static_cast<unsigned long long>(recovered->replayed),
                static_cast<unsigned long long>(recovered->skipped),
                recovered->torn_tail ? 1 : 0);
  }
}

// --- drift kill-restart drill (--crash) -----------------------------------

/// Canonical text form of a DriftStatus — the drift drill's equality
/// probe. %.17g round-trips doubles exactly, so two fingerprints compare
/// equal iff the monitor states (windows, sketch, KS result, counters)
/// are bit-identical.
std::string drift_fingerprint(const online::DriftStatus& d) {
  std::ostringstream os;
  char buf[256];
  os << "gen=" << d.generation << " observed=" << d.observed
     << " ref=" << d.reference_size << " frozen=" << d.reference_frozen
     << " live=" << d.live_size;
  std::snprintf(buf, sizeof buf, " ks=%.17g p=%.17g", d.ks_statistic,
                d.p_value);
  os << buf << " evals=" << d.evaluations << " triggers=" << d.triggers
     << " pending=" << d.trigger_pending;
  std::snprintf(buf, sizeof buf,
                " sketch=%llu/%.17g/%.17g/%.17g/%.17g/%.17g/%.17g",
                static_cast<unsigned long long>(d.sketch.count), d.sketch.sum,
                d.sketch.min, d.sketch.max, d.sketch.q50, d.sketch.q90,
                d.sketch.q99);
  os << buf;
  for (const online::GenerationMix& g : d.generations) {
    os << " mix=" << g.benign << "/" << g.malicious;
  }
  return os.str();
}

/// Shared configuration for the drift drill's children and the parent's
/// recovery continuation — the reference window is exactly one benign
/// replay, the live window exactly one malicious replay, and the volume
/// trigger is parked out of reach so drift is the only way to retrain.
online::OnlineOptions drift_drill_options(const Trained& trained,
                                          durable::DurableStore* store) {
  online::OnlineOptions oopts;
  oopts.accumulator.admit_floor = 0.0;
  oopts.retrain.min_new_events = 1u << 30;
  oopts.retrain.max_new_samples = 32;
  oopts.gates = {.max_disagreement = 1.0,
                 .max_latency_ratio = 1e9,
                 .min_windows = 2};
  oopts.drift.enabled = true;
  oopts.drift.reference_target =
      trained.detector->scan(trained.benign).window_labels.size();
  oopts.drift.live_window =
      trained.detector->scan(trained.malicious).window_labels.size();
  oopts.drift.min_live = std::min<std::size_t>(oopts.drift.live_window, 8);
  oopts.drift.p_threshold = 0.05;
  oopts.durable = store;
  return oopts;
}

/// Child process for the drift kill-restart drill (exec'd like
/// crash_child). Deterministic single-worker drive: a benign replay
/// freezes the generation-0 reference window, a malicious replay — the
/// distribution shift — fills the live window, and the next poll fires
/// the KS trigger. Mode "baseline" completes that poll uncrashed and
/// records the trigger LSN + monitor fingerprint; mode "crash" arms
/// online.drift.pre_trigger and dies between the journaled sample batch
/// and the trigger record.
int drift_child(const char* dir_c, const char* mode_c,
                std::size_t sim_events) {
  const std::string dir = dir_c;
  const bool crash = std::string_view(mode_c) == "crash";
  const Trained trained = train_detector(sim_events, 7);

  durable::DurableOptions dopts;
  dopts.dir = dir;
  dopts.checkpoint_every_appends = 1;  // checkpoint at every poll
  durable::DurableStore store(dopts);
  if (!store.open().ok()) return 2;

  serve::ServerOptions soptions;
  soptions.workers = 1;  // deterministic observation order
  serve::DetectionServer server(soptions);
  server.registry().add("default", trained.detector);

  const online::OnlineOptions oopts = drift_drill_options(trained, &store);
  if (oopts.drift.reference_target == 0 || oopts.drift.live_window == 0) {
    return 2;
  }
  online::OnlineManager manager(&server, oopts);
  manager.install();
  server.start();
  const auto session = server.open_session({"drift", 1}, "default");
  if (session == nullptr) return 2;

  for (const trace::PartitionedEvent& e : trained.benign.events) {
    server.submit(session, e);
  }
  server.drain();
  manager.poll_once();  // journals the reference batch, checkpoint folds it
  if (!manager.report().drift.reference_frozen) return 4;

  for (const trace::PartitionedEvent& e : trained.malicious.events) {
    server.submit(session, e);
  }
  server.drain();

  if (crash && !util::FaultInjector::instance().arm_from_spec(
                   "online.drift.pre_trigger:exit:1")) {
    return 2;
  }
  manager.poll_once();  // crash mode dies here, before the trigger record
  const online::OnlineReport report = manager.report();
  if (report.drift.triggers != 1 || report.last_drift_trigger_lsn == 0) {
    return 4;
  }
  {
    std::ofstream out(dir + "/drift_baseline.txt");
    out << report.last_drift_trigger_lsn << "\n"
        << drift_fingerprint(report.drift) << "\n";
  }
  manager.stop();
  server.stop();
  return 0;
}

/// Phase (--crash): kill-restart the drift monitor. A baseline child
/// runs the drive uncrashed and records where the KS trigger lands; a
/// second child dies at online.drift.pre_trigger — its journal holds the
/// drift samples but not the trigger. The parent recovers the crashed
/// directory, polls once, and the lost trigger must re-fire at the same
/// LSN with a monitor state identical to the uncrashed baseline.
void drift_crash_drill(const Trained& trained, std::size_t sim_events) {
  const Watchdog watchdog("drift-crash", std::chrono::seconds(600));
  char base_template[] = "/tmp/leaps-chaos-drift-XXXXXX";
  char* base = ::mkdtemp(base_template);
  if (!check(base != nullptr, "drift-crash: mkdtemp failed")) return;

  char exe_buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (!check(n > 0, "drift-crash: cannot resolve /proc/self/exe")) return;
  exe_buf[n] = '\0';

  const std::string events = std::to_string(sim_events);
  const auto run_child = [&](const char* mode, const std::string& dir) {
    ::mkdir(dir.c_str(), 0755);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(exe_buf, exe_buf, "--drift-child", dir.c_str(), mode,
              events.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  };

  const std::string baseline_dir = std::string(base) + "/baseline";
  const int baseline_status = run_child("baseline", baseline_dir);
  if (!check(WIFEXITED(baseline_status) && WEXITSTATUS(baseline_status) == 0,
             "drift-crash: baseline child failed")) {
    std::fprintf(stderr, "  baseline: wait status %d\n", baseline_status);
    return;
  }
  std::uint64_t baseline_lsn = 0;
  std::string baseline_fp;
  {
    std::ifstream in(baseline_dir + "/drift_baseline.txt");
    in >> baseline_lsn;
    in.ignore();  // the newline before the fingerprint line
    std::getline(in, baseline_fp);
  }
  if (!check(baseline_lsn != 0 && !baseline_fp.empty(),
             "drift-crash: baseline child recorded nothing")) {
    return;
  }

  const std::string crash_dir = std::string(base) + "/crash";
  const int crash_status = run_child("crash", crash_dir);
  if (!check(WIFEXITED(crash_status) && WEXITSTATUS(crash_status) == 137,
             "drift-crash: child did not die at online.drift.pre_trigger")) {
    std::fprintf(stderr, "  crash: wait status %d\n", crash_status);
    return;
  }

  durable::DurableOptions dopts;
  dopts.dir = crash_dir;
  dopts.checkpoint_every_appends = 1;
  durable::DurableStore store(dopts);
  const auto recovered = store.recover();
  if (!check(recovered.ok(), "drift-crash: recovery failed")) {
    std::fprintf(stderr, "  %s\n", recovered.status().to_string().c_str());
    return;
  }
  check(!recovered->drift.empty(),
        "drift-crash: snapshot carried no DRIFT blob");
  check(!recovered->drift_ops.empty(),
        "drift-crash: journal replay produced no drift ops");
  if (!check(recovered->detector != nullptr,
             "drift-crash: incumbent lost across the restart") ||
      !check(store.open().ok(), "drift-crash: reopen failed")) {
    return;
  }

  serve::ServerOptions so;
  so.workers = 1;
  serve::DetectionServer server(so);
  server.registry().add("default", recovered->detector);
  online::OnlineManager manager(&server,
                                drift_drill_options(trained, &store));
  manager.install();
  manager.restore(*recovered);
  server.start();
  manager.poll_once();  // must re-evaluate and re-fire the lost trigger
  const online::OnlineReport r = manager.report();
  check(r.drift.triggers == 1,
        "drift-crash: recovered run did not re-fire the trigger");
  if (!check(r.last_drift_trigger_lsn == baseline_lsn,
             "drift-crash: re-fired trigger landed at a different LSN")) {
    std::fprintf(stderr, "  baseline lsn %llu, recovered lsn %llu\n",
                 static_cast<unsigned long long>(baseline_lsn),
                 static_cast<unsigned long long>(r.last_drift_trigger_lsn));
  }
  const std::string fp = drift_fingerprint(r.drift);
  if (!check(fp == baseline_fp,
             "drift-crash: recovered monitor state diverged from baseline")) {
    std::fprintf(stderr, "  baseline:  %s\n  recovered: %s\n",
                 baseline_fp.c_str(), fp.c_str());
  }
  server.stop();
  manager.stop();
  std::printf("drift crash drill: trigger re-fired at lsn %llu after "
              "kill-restart, monitor state identical\n",
              static_cast<unsigned long long>(r.last_drift_trigger_lsn));
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden child modes for the --crash drills (exec'd by crash_drills
  // and drift_crash_drill).
  if (argc == 5 && std::string_view(argv[1]) == "--crash-child") {
    return crash_child(argv[2], argv[3],
                       static_cast<std::size_t>(
                           std::strtoull(argv[4], nullptr, 10)));
  }
  if (argc == 5 && std::string_view(argv[1]) == "--drift-child") {
    return drift_child(argv[2], argv[3],
                       static_cast<std::size_t>(
                           std::strtoull(argv[4], nullptr, 10)));
  }
  cli::ArgParser args(argc, argv, kUsage);
  std::size_t seed = 2015;
  std::size_t events = 10000;
  std::size_t sessions = 8;
  double rate = 0.05;
  std::size_t corpus = 200;
  bool smoke = false;
  bool soak = false;
  bool rollover = false;
  bool crash = false;
  cli::ObsFlags obs_flags;
  args.option("--seed", &seed);
  args.option("--events", &events);
  args.option("--sessions", &sessions);
  args.option("--rate", &rate);
  args.option("--corpus", &corpus);
  args.flag("--smoke", &smoke);
  args.flag("--soak", &soak);
  args.flag("--rollover", &rollover);
  args.flag("--crash", &crash);
  obs_flags.add_to(args);
  args.parse(0, 0);
  obs_flags.activate();

  if (smoke) {
    events = std::min<std::size_t>(events, 2000);
    // --soak's whole point is the session count; never cap it.
    if (!soak) sessions = std::min<std::size_t>(sessions, 4);
    corpus = std::min<std::size_t>(corpus, 48);
  }
  if (sessions < 2) args.usage_error("%s must be >= 2", "--sessions");
  const std::size_t per_session = std::max<std::size_t>(1, events / sessions);

  try {
    util::FaultInjector::instance().set_seed(seed);
    util::Rng rng(util::splitmix64(seed));

    std::printf("training detector (seed %zu)...\n", seed);
    const Trained trained = train_detector(smoke ? 900 : 1500, 7);

    if (soak) {
      // The soak replaces the replay phases: same binary, same detector,
      // but the subject under stress is the session fabric itself.
      soak_fabric(trained, sessions, smoke);
      obs_flags.finish();
      if (g_failures > 0) {
        std::fprintf(stderr, "leaps-chaos: %d violation(s)\n", g_failures);
        return 1;
      }
      std::printf("leaps-chaos: contract held (no crashes, no deadlocks, "
                  "accounting exact)\n");
      return 0;
    }

    ingest_chaos(trained.raw_benign, corpus, rng);
    persist_corrupt_corpus(trained);

    const std::vector<int> baseline =
        baseline_verdicts(*trained.detector, trained.mixed, per_session);
    fault_replay(trained, sessions, per_session, rate, baseline);
    registry_chaos(trained);
    latency_chaos(trained, sessions, std::max<std::size_t>(per_session / 4,
                                                           std::size_t{64}));
    if (rollover) {
      rollover_chaos(trained, std::min<std::size_t>(sessions, 4),
                     std::max<std::size_t>(per_session / 4,
                                           std::size_t{128}));
    }
    if (crash) {
      crash_drills(trained, smoke ? 900 : 1500);
      drift_crash_drill(trained, smoke ? 900 : 1500);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-chaos: FAIL: uncaught exception: %s\n",
                 e.what());
    ++g_failures;
  }

  obs_flags.finish();
  if (g_failures > 0) {
    std::fprintf(stderr, "leaps-chaos: %d violation(s)\n", g_failures);
    return 1;
  }
  std::printf("leaps-chaos: contract held (no crashes, no deadlocks, "
              "accounting exact)\n");
  return 0;
}
