// leaps_chaos — chaos harness for the detection service.
//
// Replays simulator logs through the serving stack while arming fault
// points (util/fault.h) and feeding the binary-log reader corrupted
// bytes, then asserts the service's robustness contract:
//
//   * no crash, no abort, no deadlock (a per-phase watchdog converts a
//     hang into a diagnostic and exit 1),
//   * exact accounting — after drain(),
//       events_ingested == events_processed + events_dropped
//                          + events_quarantined,
//   * blast-radius isolation — injected classification faults quarantine
//     only the targeted "victim-*" sessions; every "steady-*" session's
//     verdicts match a fault-free sequential replay bit-for-bit.
//
// Fully deterministic in --seed (fault draws, corpus mutations, and the
// simulated logs all derive from it). Exit 0 = contract held, 1 = any
// violation, 2 = usage.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "core/pipeline.h"
#include "ml/svm.h"
#include "online/manager.h"
#include "online/shadow.h"
#include "online/verdict_diff.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace leaps;

constexpr const char* kUsage =
    "usage: leaps-chaos [--seed N] [--events N] [--sessions N] [--rate F]\n"
    "                   [--corpus N] [--smoke]\n"
    "  chaos-tests the detection service: replays logs with fault points\n"
    "  armed and bit-flipped binary logs, asserting no crash/deadlock,\n"
    "  exact event accounting, and per-session fault isolation.\n"
    "  --seed N      deterministic seed for faults + corpus (default 2015)\n"
    "  --events N    total events in the replay phases (default 10000)\n"
    "  --sessions N  concurrent sessions, half victims (default 8)\n"
    "  --rate F      per-event fault probability on victims (default 0.05)\n"
    "  --corpus N    corrupted binary-log variants per kind (default 200)\n"
    "  --smoke       small fast run for CI\n"
    "  --rollover    also exercise the online retrain -> shadow -> promote\n"
    "                machinery plus a forced-rollback drill (not part of\n"
    "                plain --smoke; CI runs it as a non-gating canary)\n"
    "  --trace-out FILE, --profile, --metrics-out FILE  observability\n"
    "exit: 0 contract held, 1 violation, 2 usage\n";

int g_failures = 0;

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "leaps-chaos: FAIL: %s\n", what);
    ++g_failures;
  }
  return ok;
}

/// Converts a hung phase into a diagnostic + exit 1 instead of a CI
/// timeout with no context.
class Watchdog {
 public:
  Watchdog(const char* phase, std::chrono::seconds limit) {
    thread_ = std::thread([this, phase, limit] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, limit, [this] { return done_; })) {
        std::fprintf(stderr,
                     "leaps-chaos: FAIL: deadlock suspected — phase '%s' "
                     "exceeded %llds\n",
                     phase, static_cast<long long>(limit.count()));
        std::_Exit(1);
      }
    });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

trace::PartitionedLog partition_raw(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

struct Trained {
  trace::RawLog raw_benign;  // serialization fodder for the ingest phase
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  std::shared_ptr<const core::Detector> detector;
};

/// Small genuinely-trained detector (mirrors the test fixture; tools
/// cannot include tests/).
Trained train_detector(std::size_t sim_events, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.benign_events = sim_events;
  cfg.mixed_events = sim_events * 3 / 4;
  cfg.malicious_events = sim_events / 2;
  cfg.seed = seed;
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), cfg);

  Trained out;
  out.raw_benign = logs.benign;
  out.benign = partition_raw(logs.benign);
  out.mixed = partition_raw(logs.mixed);

  const core::TrainingData td =
      core::LeapsPipeline().prepare(out.benign, out.mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::TrainStats stats;
  const ml::SvmModel model = ml::SvmTrainer({}).train(train, &stats);
  auto detector =
      std::make_shared<core::Detector>(td.preprocessor, scaler, model);
  // Continual state makes the detector warm-retrainable (the --rollover
  // phase needs it; harmless otherwise).
  core::ContinualState continual;
  continual.benign_cfg = td.benign_cfg.graph;
  continual.train = std::move(train);
  continual.alpha = std::move(stats.alpha);
  detector->set_continual(std::move(continual));
  out.detector = std::move(detector);
  return out;
}

void check_identity(const serve::MetricsSnapshot& m, const char* phase) {
  const std::uint64_t accounted =
      m.events_processed + m.events_dropped + m.events_quarantined;
  if (m.events_ingested != accounted) {
    std::fprintf(stderr,
                 "leaps-chaos: FAIL: %s accounting: ingested=%llu != "
                 "processed=%llu + dropped=%llu + quarantined=%llu\n",
                 phase, static_cast<unsigned long long>(m.events_ingested),
                 static_cast<unsigned long long>(m.events_processed),
                 static_cast<unsigned long long>(m.events_dropped),
                 static_cast<unsigned long long>(m.events_quarantined));
    ++g_failures;
  }
}

/// Phase: every truncation of a valid binary log must be rejected as
/// corrupt, and every bit-flipped variant must come back as a Status —
/// ok or error — never an escaped exception, crash, or hang.
void ingest_chaos(const trace::RawLog& log, std::size_t corpus,
                  util::Rng& rng) {
  const Watchdog watchdog("ingest", std::chrono::seconds(120));
  std::ostringstream encoded;
  trace::write_raw_log_binary(log, encoded);
  const std::string bytes = encoded.str();
  {
    std::istringstream is(bytes);
    check(trace::read_raw_log_binary(is).ok(),
          "ingest: pristine binary log must read back");
  }

  for (std::size_t i = 0; i < corpus; ++i) {
    const std::size_t cut = rng.next_below(bytes.size());
    std::istringstream is(bytes.substr(0, cut));
    const util::StatusOr<trace::RawLog> got = trace::read_raw_log_binary(is);
    check(!got.ok(), "ingest: a truncated log must not parse");
  }

  std::size_t flips_ok = 0;
  std::size_t flips_rejected = 0;
  for (std::size_t i = 0; i < corpus; ++i) {
    std::string mutated = bytes;
    // 1-3 independent bit flips per variant.
    const std::size_t flips = 1 + rng.next_below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^
          (1u << rng.next_below(8)));
    }
    std::istringstream is(mutated);
    try {
      // read_raw_log_any also exercises format sniffing on hostile bytes.
      const util::StatusOr<trace::RawLog> got = trace::read_raw_log_any(is);
      got.ok() ? ++flips_ok : ++flips_rejected;
    } catch (...) {
      check(false, "ingest: reader let an exception escape on corrupt bytes");
    }
  }
  std::printf("ingest chaos: %zu truncations rejected, bit-flips "
              "%zu ok / %zu rejected, 0 crashes\n",
              corpus, flips_ok, flips_rejected);
}

/// Phase: fault-free sequential replay — the per-session ground truth.
std::vector<int> baseline_verdicts(const core::Detector& detector,
                                   const trace::PartitionedLog& log,
                                   std::size_t per_session) {
  core::Detector::Stream stream = detector.stream();
  std::vector<int> labels;
  for (std::size_t i = 0; i < per_session; ++i) {
    const std::optional<int> label =
        stream.push(log.events[i % log.events.size()]);
    if (label.has_value()) labels.push_back(*label);
  }
  return labels;
}

/// Phase: concurrent replay with classification faults injected into the
/// victim sessions only.
void fault_replay(const Trained& trained, std::size_t sessions,
                  std::size_t per_session, double rate,
                  const std::vector<int>& baseline) {
  const Watchdog watchdog("fault-replay", std::chrono::seconds(300));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.workers = 4;
  options.batch_size = 64;
  options.circuit_breaker = 1;  // one injected throw quarantines
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  std::mutex verdicts_mu;
  std::map<std::string, std::vector<int>> verdicts;
  server.set_verdict_sink([&](const serve::VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(verdicts_mu);
    verdicts[v.key.to_string()].push_back(v.label);
  });

  std::vector<serve::SessionKey> keys;
  std::vector<std::shared_ptr<serve::Session>> opened;
  for (std::size_t s = 0; s < sessions; ++s) {
    const bool victim = s % 2 == 0;
    keys.push_back(serve::SessionKey{
        (victim ? "victim-" : "steady-") + std::to_string(s),
        static_cast<std::uint32_t>(1000 + s)});
    opened.push_back(server.open_session(keys.back(), "default"));
    check(opened.back() != nullptr, "fault-replay: open_session failed");
  }

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kThrow;
    spec.probability = rate;
    spec.filter = "victim";  // matches victim-* session keys only
    injector.arm("serve.worker.classify", spec);
  }
  server.start();

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& session = opened[s];
      const auto& events = trained.mixed.events;
      for (std::size_t i = 0; i < per_session; ++i) {
        server.submit(session, events[i % events.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();

  check_identity(server.metrics().snapshot(), "fault-replay");

  std::size_t victims_quarantined = 0;
  {
    const std::lock_guard<std::mutex> lock(verdicts_mu);
    for (std::size_t s = 0; s < sessions; ++s) {
      const bool victim = s % 2 == 0;
      const bool quarantined = opened[s]->quarantined();
      if (victim) {
        victims_quarantined += quarantined ? 1 : 0;
      } else {
        check(!quarantined,
              "fault-replay: a steady session was quarantined");
        const online::SequenceDiff diff =
            online::diff_sequences(verdicts[keys[s].to_string()], baseline);
        if (!check(diff.identical(),
                   "fault-replay: steady session diverged from the "
                   "fault-free run")) {
          std::fprintf(stderr,
                       "  %s: %zu/%zu windows disagree, length delta %zu\n",
                       keys[s].to_string().c_str(), diff.disagreements,
                       diff.compared, diff.length_delta);
        }
      }
    }
  }
  check(victims_quarantined >= 1,
        "fault-replay: no victim session was quarantined");

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  server.stop();
  injector.disarm_all();
  std::printf(
      "fault replay: %zu sessions x %zu events, %zu/%zu victims "
      "quarantined, %llu failed, %llu quarantined events; steady "
      "sessions matched baseline\n",
      static_cast<std::size_t>(opened.size()), per_session,
      victims_quarantined, (opened.size() + 1) / 2,
      static_cast<unsigned long long>(m.events_failed),
      static_cast<unsigned long long>(m.events_quarantined));
}

/// Phase: deterministic registry-retry check — a transient registry
/// outage exhausts the configured retries, then recovery succeeds.
void registry_chaos(const Trained& trained) {
  const Watchdog watchdog("registry", std::chrono::seconds(60));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.registry_retries = 3;
  options.registry_backoff = std::chrono::milliseconds(1);
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kError;
    spec.error_code = util::StatusCode::kUnavailable;
    injector.arm("serve.registry.find", spec);
  }
  const serve::SessionKey key{"retry-host", 1};
  check(server.open_session(key, "default") == nullptr,
        "registry: lookup must fail while the outage lasts");
  check(server.metrics().snapshot().registry_retries == 3,
        "registry: expected exactly 3 backed-off retries");
  injector.disarm_all();
  check(server.open_session(key, "default") != nullptr,
        "registry: lookup must succeed after the outage clears");
  std::printf("registry chaos: outage exhausted 3 retries, recovery ok\n");
}

/// Phase: latency injection against tiny queues with shedding enabled —
/// the server must keep draining and keep its books balanced even while
/// dropping load.
void latency_chaos(const Trained& trained, std::size_t sessions,
                   std::size_t per_session) {
  const Watchdog watchdog("latency", std::chrono::seconds(300));
  auto& injector = util::FaultInjector::instance();

  serve::ServerOptions options;
  options.workers = 2;
  options.batch_size = 32;
  options.queue_capacity = 64;
  options.shed_queue_wait_us = 200;
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  {
    util::FaultSpec spec;
    spec.action = util::FaultAction::kDelay;
    spec.probability = 0.25;
    spec.delay = std::chrono::microseconds(300);
    injector.arm("serve.worker.classify", spec);
  }
  server.start();

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto session = server.open_session(
          serve::SessionKey{"slow-" + std::to_string(s),
                            static_cast<std::uint32_t>(2000 + s)},
          "default");
      const auto& events = trained.mixed.events;
      for (std::size_t i = 0; i < per_session; ++i) {
        server.submit(session, events[i % events.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  check_identity(m, "latency");
  server.stop();
  injector.disarm_all();
  std::printf("latency chaos: drained %llu events under injected delay "
              "(%llu shed, %llu shed activations)\n",
              static_cast<unsigned long long>(m.events_ingested),
              static_cast<unsigned long long>(m.events_shed),
              static_cast<unsigned long long>(m.shed_activations));
}

/// Phase (--rollover): a live server runs a full online-learning cycle —
/// benign traffic accumulates, a warm retrain produces a candidate, the
/// candidate shadows and promotes through the RCU swap — then a
/// deliberately broken candidate is shadowed and must roll back. The
/// contract: no crash, exact accounting, zero dropped events, and both
/// the promotion and the rollback actually happen.
void rollover_chaos(const Trained& trained, std::size_t sessions,
                    std::size_t per_session) {
  const Watchdog watchdog("rollover", std::chrono::seconds(300));

  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("default", trained.detector);

  online::OnlineOptions online_options;
  online_options.retrain.min_new_events = 1;
  online_options.retrain.max_new_samples = 64;
  online_options.gates.min_windows = 4;
  // This phase drills the machinery, not model quality: promote whenever
  // the comparison completes (disagreement/latency gates wide open).
  online_options.gates.max_disagreement = 1.0;
  online_options.gates.max_latency_ratio = 1e9;
  online::OnlineManager manager(&server, online_options);
  manager.install();
  server.start();

  std::vector<std::shared_ptr<serve::Session>> opened;
  for (std::size_t s = 0; s < sessions; ++s) {
    opened.push_back(server.open_session(
        serve::SessionKey{"roll-" + std::to_string(s),
                          static_cast<std::uint32_t>(3000 + s)},
        "default"));
    check(opened.back() != nullptr, "rollover: open_session failed");
  }
  const auto replay_round = [&] {
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < sessions; ++s) {
      producers.emplace_back([&, s] {
        const auto& events = trained.benign.events;
        for (std::size_t i = 0; i < per_session; ++i) {
          server.submit(opened[s], events[i % events.size()]);
        }
      });
    }
    for (std::thread& p : producers) p.join();
    server.drain();
  };

  // Round 1 accumulates + retrains (the first poll stages the shadow),
  // round 2 feeds the shadow, the second poll promotes. No third poll: it
  // would start the next retrain cycle and stage a fresh shadow, blocking
  // the drill below.
  replay_round();
  manager.poll_once();
  replay_round();
  manager.poll_once();

  online::OnlineReport report = manager.report();
  check(report.retrain_cycles >= 1, "rollover: no retrain cycle ran");
  check(report.promotions >= 1, "rollover: candidate was not promoted");

  // Rollback drill: an all-malicious candidate must fail the (now
  // meaningful) disagreement gate on benign traffic and end quarantined.
  auto broken = std::make_shared<core::Detector>(*trained.detector);
  broken->set_decision_threshold(1e18);
  online::ShadowEvaluator evaluator({/*max_disagreement=*/0.02,
                                     /*max_latency_ratio=*/1e9,
                                     /*min_windows=*/4});
  check(server.begin_shadow(
            "default", broken,
            [&evaluator](const serve::SessionKey& key, int active,
                         int shadow, std::uint64_t a_ns,
                         std::uint64_t s_ns) {
              evaluator.record(key, active, shadow, a_ns, s_ns);
            }),
        "rollover: drill begin_shadow refused");
  replay_round();
  check(evaluator.decision() == online::RolloverDecision::kRollback,
        "rollover: broken candidate was not voted down");
  check(server.end_shadow("default", false),
        "rollover: drill end_shadow refused");
  check(server.registry().quarantined_count("default") == 1,
        "rollover: broken candidate not quarantined");

  const serve::MetricsSnapshot m = server.metrics().snapshot();
  check_identity(m, "rollover");
  check(m.events_dropped == 0, "rollover: promotion dropped events");
  server.stop();
  std::printf(
      "rollover chaos: %llu retrains (warm saved %llu iters), "
      "%llu promotion(s), 1 forced rollback, %llu events with 0 drops\n",
      static_cast<unsigned long long>(report.retrain_cycles),
      static_cast<unsigned long long>(report.warm_iterations_saved),
      static_cast<unsigned long long>(report.promotions),
      static_cast<unsigned long long>(m.events_processed));
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args(argc, argv, kUsage);
  std::size_t seed = 2015;
  std::size_t events = 10000;
  std::size_t sessions = 8;
  double rate = 0.05;
  std::size_t corpus = 200;
  bool smoke = false;
  bool rollover = false;
  cli::ObsFlags obs_flags;
  args.option("--seed", &seed);
  args.option("--events", &events);
  args.option("--sessions", &sessions);
  args.option("--rate", &rate);
  args.option("--corpus", &corpus);
  args.flag("--smoke", &smoke);
  args.flag("--rollover", &rollover);
  obs_flags.add_to(args);
  args.parse(0, 0);
  obs_flags.activate();

  if (smoke) {
    events = std::min<std::size_t>(events, 2000);
    sessions = std::min<std::size_t>(sessions, 4);
    corpus = std::min<std::size_t>(corpus, 48);
  }
  if (sessions < 2) args.usage_error("%s must be >= 2", "--sessions");
  const std::size_t per_session = std::max<std::size_t>(1, events / sessions);

  try {
    util::FaultInjector::instance().set_seed(seed);
    util::Rng rng(util::splitmix64(seed));

    std::printf("training detector (seed %zu)...\n", seed);
    const Trained trained = train_detector(smoke ? 900 : 1500, 7);

    ingest_chaos(trained.raw_benign, corpus, rng);

    const std::vector<int> baseline =
        baseline_verdicts(*trained.detector, trained.mixed, per_session);
    fault_replay(trained, sessions, per_session, rate, baseline);
    registry_chaos(trained);
    latency_chaos(trained, sessions, std::max<std::size_t>(per_session / 4,
                                                           std::size_t{64}));
    if (rollover) {
      rollover_chaos(trained, std::min<std::size_t>(sessions, 4),
                     std::max<std::size_t>(per_session / 4,
                                           std::size_t{128}));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-chaos: FAIL: uncaught exception: %s\n",
                 e.what());
    ++g_failures;
  }

  obs_flags.finish();
  if (g_failures > 0) {
    std::fprintf(stderr, "leaps-chaos: %d violation(s)\n", g_failures);
    return 1;
  }
  std::printf("leaps-chaos: contract held (no crashes, no deadlocks, "
              "accounting exact)\n");
  return 0;
}
