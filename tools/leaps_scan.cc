// leaps_scan — apply a saved LEAPS detector to a raw log (Testing Phase).
//
// Usage:
//   leaps_scan <detector> <trace.log> [--threshold F] [--verbose]
//
// Prints a per-window verdict summary; exits 0 when the flagged fraction
// stays at or below the threshold (default 0.25) and 3 when it exceeds it,
// so the tool composes into scripts/alert pipelines.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/persist.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"

int main(int argc, char** argv) {
  using namespace leaps;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: leaps_scan <detector> <trace.log> "
                 "[--threshold F] [--verbose]\n");
    return 2;
  }
  double threshold = 0.25;
  bool verbose = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr, "leaps_scan: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const core::Detector detector = core::load_detector_file(argv[1]);
    std::ifstream is(argv[2], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "leaps_scan: cannot open %s\n", argv[2]);
      return 1;
    }
    // Accepts both the textual and the binary log format.
    const trace::RawLog raw = trace::read_raw_log_any(is);
    const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
    const trace::PartitionedLog log =
        trace::StackPartitioner(t.log.process_name).partition(t.log);

    const core::Detector::ScanResult result = detector.scan(log);
    if (verbose) {
      const std::size_t window = detector.preprocessor().window();
      for (std::size_t w = 0; w < result.window_labels.size(); ++w) {
        if (result.window_labels[w] == -1) {
          std::printf("MALICIOUS window %zu (events %zu-%zu)\n", w,
                      w * window, (w + 1) * window - 1);
        }
      }
    }
    std::printf("%s: %zu windows scanned, %zu benign, %zu malicious "
                "(%.1f%% flagged, threshold %.1f%%)\n",
                argv[2], result.window_labels.size(), result.benign_windows,
                result.malicious_windows,
                100.0 * result.malicious_fraction(), 100.0 * threshold);
    if (result.malicious_fraction() > threshold) {
      std::printf("VERDICT: suspicious — camouflaged activity likely\n");
      return 3;
    }
    std::printf("VERDICT: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps_scan: %s\n", e.what());
    return 1;
  }
}
