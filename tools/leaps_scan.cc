// leaps_scan — apply a saved LEAPS detector to a raw log (Testing Phase).
//
// Usage:
//   leaps_scan <detector> <trace.log> [--threshold F] [--verbose]
//
// Prints a per-window verdict summary; exits 0 when the flagged fraction
// stays at or below the threshold (default 0.25) and 3 when it exceeds it,
// so the tool composes into scripts/alert pipelines.
#include <cstdio>

#include "cli.h"
#include "core/persist.h"
#include "ingest.h"
#include "trace/partition.h"

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv,
                      "usage: leaps-scan <detector> <trace.log> "
                      "[--threshold F] [--verbose]\n"
                      "  applies a saved detector to a raw log (text or "
                      "binary; '-' reads stdin).\n"
                      "  --threshold F  flagged-fraction above which the "
                      "verdict is suspicious (default 0.25)\n"
                      "  --verbose      print every malicious window\n"
                      "  --trace-out FILE, --profile, --metrics-out FILE  "
                      "observability outputs\n" +
                      std::string(cli::ThreadsFlag::kUsage) +
                      "exit: 0 clean, 3 suspicious, 1 I/O error, 2 usage\n");
  double threshold = 0.25;
  bool verbose = false;
  cli::ObsFlags obs_flags;
  cli::ThreadsFlag threads_flag;
  args.option("--threshold", &threshold);
  args.flag("--verbose", &verbose);
  obs_flags.add_to(args);
  threads_flag.add_to(args);
  const std::vector<std::string> pos = args.parse(2, 2);
  obs_flags.activate();
  threads_flag.apply();
  const std::string detector_path = pos[0];
  const std::string log_path = pos[1];

  int rc = 0;
  try {
    const core::Detector detector = core::load_detector_file(detector_path);
    // Accepts both the textual and the binary log format.
    const util::StatusOr<trace::PartitionedLog> loaded =
        cli::load_partitioned_log(log_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "leaps-scan: %s: %s\n", log_path.c_str(),
                   loaded.status().to_string().c_str());
      obs_flags.finish();
      return 1;
    }
    const trace::PartitionedLog& log = *loaded;

    const core::Detector::ScanResult result = detector.scan(log);
    if (verbose) {
      const std::size_t window = detector.preprocessor().window();
      for (std::size_t w = 0; w < result.window_labels.size(); ++w) {
        if (result.window_labels[w] == -1) {
          std::printf("MALICIOUS window %zu (events %zu-%zu)\n", w,
                      w * window, (w + 1) * window - 1);
        }
      }
    }
    std::printf("%s: %zu windows scanned, %zu benign, %zu malicious "
                "(%.1f%% flagged, threshold %.1f%%)\n",
                log_path.c_str(), result.window_labels.size(),
                result.benign_windows,
                result.malicious_windows,
                100.0 * result.malicious_fraction(), 100.0 * threshold);
    if (result.malicious_fraction() > threshold) {
      std::printf("VERDICT: suspicious — camouflaged activity likely\n");
      rc = 3;
    } else {
      std::printf("VERDICT: clean\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-scan: %s\n", e.what());
    rc = 1;
  }
  obs_flags.finish();
  return rc;
}
