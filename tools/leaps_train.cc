// leaps_train — train a LEAPS detector from raw logs and save it.
//
// Usage:
//   leaps_train <benign.log> <mixed.log> <detector-out>
//               [--align] [--plain-svm] [--folds N]
//
// Runs the full training phase (Figure 1): parse → partition → preprocess
// → CFG inference → weight assessment (optionally CFG-aligned for
// source-level trojans) → weighted 10-fold CV over (λ, σ²) → WSVM.
// The resulting detector file is consumed by leaps_scan.
#include <cstdio>
#include <string>

#include "cli.h"
#include "core/persist.h"
#include "ingest.h"
#include "ml/cross_validation.h"
#include "trace/partition.h"
#include "util/rng.h"

namespace {

leaps::trace::PartitionedLog read_log(const std::string& path) {
  // Accepts both the textual and the binary log format; "-" reads stdin.
  leaps::util::StatusOr<leaps::trace::PartitionedLog> log =
      leaps::cli::load_partitioned_log(path);
  if (!log.ok()) {
    std::fprintf(stderr, "leaps-train: %s: %s\n", path.c_str(),
                 log.status().to_string().c_str());
    std::exit(1);
  }
  std::printf("parsed %-26s %zu events, process %s\n", path.c_str(),
              log->events.size(), log->process_name.c_str());
  return *std::move(log);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  cli::ArgParser args(argc, argv,
                      "usage: leaps-train <benign.log> <mixed.log> "
                      "<detector-out>\n"
                      "                   [--align] [--plain-svm] [--folds N]"
                      " [--max-false-alarms F]\n"
                      "  trains a detector (Training Phase) and saves it for "
                      "leaps-scan / leaps-serve.\n"
                      "  --align              CFG-align mixed vs benign "
                      "(source-level trojans)\n"
                      "  --plain-svm          drop the CFG-derived sample "
                      "weights\n"
                      "  --folds N            cross-validation folds "
                      "(default 10)\n"
                      "  --max-false-alarms F calibrate the verdict "
                      "threshold on the benign log\n"
                      "  --trace-out FILE     write a chrome://tracing span "
                      "JSON\n"
                      "  --profile            print per-stage timings to "
                      "stderr\n"
                      "  --metrics-out FILE   write metrics on exit "
                      "(.json or Prometheus)\n" +
                      std::string(cli::ThreadsFlag::kUsage));
  core::PipelineOptions pipeline_options;
  bool plain_svm = false;
  std::size_t folds = 10;
  double max_false_alarms = -1.0;
  cli::ObsFlags obs_flags;
  cli::ThreadsFlag threads_flag;
  args.flag("--align", &pipeline_options.align_cfgs);
  args.flag("--plain-svm", &plain_svm);
  args.option("--folds", &folds);
  args.option("--max-false-alarms", &max_false_alarms);
  obs_flags.add_to(args);
  threads_flag.add_to(args);
  const std::vector<std::string> pos = args.parse(3, 3);
  obs_flags.activate();
  threads_flag.apply();
  const bool weighted = !plain_svm;

  try {
    const trace::PartitionedLog benign = read_log(pos[0]);
    const trace::PartitionedLog mixed = read_log(pos[1]);

    const core::LeapsPipeline pipeline(pipeline_options);
    const core::TrainingData td = pipeline.prepare(benign, mixed);
    std::printf("pipeline: %zu benign windows, %zu mixed windows",
                td.benign.size(), td.mixed.size());
    if (pipeline_options.align_cfgs) {
      std::printf(" (CFG alignment: %zu pivots over %zu nodes)",
                  td.alignment.pivots.size(), td.alignment.mixed_nodes);
    }
    std::printf("\n");

    ml::Dataset train = td.benign;
    train.append(td.mixed);
    if (!weighted) {
      std::fill(train.weight.begin(), train.weight.end(), 1.0);
    }
    ml::MinMaxScaler scaler;
    scaler.fit(train.X);
    scaler.transform_in_place(train);

    ml::CrossValidationOptions cv;
    cv.folds = folds;
    cv.weighted_validation = weighted;
    util::Rng rng(7);
    const ml::GridSearchResult grid = ml::tune_svm(train, {}, cv, rng);
    std::printf("tuned (%zu-fold%s CV): lambda=%g sigma2=%g (val acc %.3f)\n",
                cv.folds, weighted ? " weighted" : "", grid.best.lambda,
                grid.best.kernel.sigma2, grid.best_accuracy);

    ml::TrainStats stats;
    const ml::SvmModel model = ml::SvmTrainer(grid.best).train(train, &stats);
    std::printf("trained %s: %zu support vectors, %zu iterations\n",
                weighted ? "WSVM" : "SVM", stats.support_vectors,
                stats.iterations);

    core::Detector detector(td.preprocessor, scaler, model);
    // Carry the continual-learning state (benign CFG, scaled training set,
    // full dual solution) so leaps-serve --online can retrain this
    // detector incrementally with a warm-started solver.
    core::ContinualState continual;
    continual.benign_cfg = td.benign_cfg.graph;
    continual.train = train;
    continual.alpha = stats.alpha;
    detector.set_continual(std::move(continual));
    if (max_false_alarms >= 0.0) {
      const double achieved = detector.calibrate(benign, max_false_alarms);
      std::printf("calibrated threshold %.4f (%.2f%% of clean windows "
                  "flagged, target %.2f%%)\n",
                  detector.decision_threshold(), 100.0 * achieved,
                  100.0 * max_false_alarms);
    }
    core::save_detector_file(detector, pos[2]);
    std::printf("saved detector to %s\n", pos[2].c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps-train: %s\n", e.what());
    obs_flags.finish();
    return 1;
  }
  obs_flags.finish();
  return 0;
}
