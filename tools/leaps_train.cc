// leaps_train — train a LEAPS detector from raw logs and save it.
//
// Usage:
//   leaps_train <benign.log> <mixed.log> <detector-out>
//               [--align] [--plain-svm] [--folds N]
//
// Runs the full training phase (Figure 1): parse → partition → preprocess
// → CFG inference → weight assessment (optionally CFG-aligned for
// source-level trojans) → weighted 10-fold CV over (λ, σ²) → WSVM.
// The resulting detector file is consumed by leaps_scan.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/persist.h"
#include "ml/cross_validation.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/rng.h"

namespace {

leaps::trace::PartitionedLog read_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "leaps_train: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  // Accepts both the textual and the binary log format.
  const leaps::trace::RawLog raw = leaps::trace::read_raw_log_any(is);
  const leaps::trace::ParsedTrace t =
      leaps::trace::RawLogParser().parse_raw(raw);
  std::printf("parsed %-26s %zu events, process %s\n", path.c_str(),
              t.log.events.size(), t.log.process_name.c_str());
  return leaps::trace::StackPartitioner(t.log.process_name)
      .partition(t.log);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace leaps;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: leaps_train <benign.log> <mixed.log> "
                 "<detector-out> [--align] [--plain-svm] [--folds N] "
                 "[--max-false-alarms F]\n");
    return 2;
  }
  core::PipelineOptions pipeline_options;
  bool weighted = true;
  std::size_t folds = 10;
  double max_false_alarms = -1.0;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--align") == 0) {
      pipeline_options.align_cfgs = true;
    } else if (std::strcmp(argv[i], "--plain-svm") == 0) {
      weighted = false;
    } else if (std::strcmp(argv[i], "--folds") == 0 && i + 1 < argc) {
      folds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-false-alarms") == 0 &&
               i + 1 < argc) {
      max_false_alarms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "leaps_train: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const trace::PartitionedLog benign = read_log(argv[1]);
    const trace::PartitionedLog mixed = read_log(argv[2]);

    const core::LeapsPipeline pipeline(pipeline_options);
    const core::TrainingData td = pipeline.prepare(benign, mixed);
    std::printf("pipeline: %zu benign windows, %zu mixed windows",
                td.benign.size(), td.mixed.size());
    if (pipeline_options.align_cfgs) {
      std::printf(" (CFG alignment: %zu pivots over %zu nodes)",
                  td.alignment.pivots.size(), td.alignment.mixed_nodes);
    }
    std::printf("\n");

    ml::Dataset train = td.benign;
    train.append(td.mixed);
    if (!weighted) {
      std::fill(train.weight.begin(), train.weight.end(), 1.0);
    }
    ml::MinMaxScaler scaler;
    scaler.fit(train.X);
    scaler.transform_in_place(train);

    ml::CrossValidationOptions cv;
    cv.folds = folds;
    cv.weighted_validation = weighted;
    util::Rng rng(7);
    const ml::GridSearchResult grid = ml::tune_svm(train, {}, cv, rng);
    std::printf("tuned (%zu-fold%s CV): lambda=%g sigma2=%g (val acc %.3f)\n",
                cv.folds, weighted ? " weighted" : "", grid.best.lambda,
                grid.best.kernel.sigma2, grid.best_accuracy);

    ml::TrainStats stats;
    const ml::SvmModel model = ml::SvmTrainer(grid.best).train(train, &stats);
    std::printf("trained %s: %zu support vectors, %zu iterations\n",
                weighted ? "WSVM" : "SVM", stats.support_vectors,
                stats.iterations);

    core::Detector detector(td.preprocessor, scaler, model);
    if (max_false_alarms >= 0.0) {
      const double achieved = detector.calibrate(benign, max_false_alarms);
      std::printf("calibrated threshold %.4f (%.2f%% of clean windows "
                  "flagged, target %.2f%%)\n",
                  detector.decision_threshold(), 100.0 * achieved,
                  100.0 * max_false_alarms);
    }
    core::save_detector_file(detector, argv[3]);
    std::printf("saved detector to %s\n", argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaps_train: %s\n", e.what());
    return 1;
  }
  return 0;
}
